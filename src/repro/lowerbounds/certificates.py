"""Certificate checkers for the lower-bound constructions.

These functions verify, on concrete instances, the structural facts the
Section 5/6 proofs rely on — they are the assertions the test suite and the
E6/E7 benches run.
"""

from __future__ import annotations

from repro.lowerbounds.isc_reduction import ISCReduction, certificate_cover
from repro.offline.exact import exact_cover

__all__ = [
    "check_element_and_set_counts",
    "check_mandatory_sets",
    "check_gap_with_exact_solver",
]


def check_element_and_set_counts(reduction: ISCReduction) -> None:
    """|U| = (2p+1) 2n + 2p and |F| = (4p+1) n, as stated in Section 5."""
    n, p = reduction.n_chasing, reduction.p
    expected_elements = (2 * p + 1) * 2 * n + 2 * p
    expected_sets = (4 * p + 1) * n
    if reduction.system.n != expected_elements:
        raise AssertionError(
            f"|U| = {reduction.system.n}, expected {expected_elements}"
        )
    if reduction.system.m != expected_sets:
        raise AssertionError(
            f"|F| = {reduction.system.m}, expected {expected_sets}"
        )


def check_mandatory_sets(reduction: ISCReduction) -> None:
    """The forced sets of Lemma 5.5 are the sole coverers of their elements:

    * ``in(v_{p+1}^j)`` only in ``R_{p+1}^j``;
    * ``e_p`` only in ``S_p^1`` (forward-chain anchor);
    * ``in(u_{p+1}^j)`` only in ``T_{p+1}^j``;
    * ``out(u_{p+1}^1)`` only in the edge-based sets
      ``{S_{2p}^j : j in f'_p(1)}`` (backward-chain anchor).
    """
    system = reduction.system
    n, p = reduction.n_chasing, reduction.p
    eidx, sidx = reduction.element_index, reduction.set_index

    def coverers(element: int) -> set[int]:
        return {i for i, r in enumerate(system.sets) if element in r}

    for j in range(n):
        expected = {sidx[("R", p + 1, j)]}
        got = coverers(eidx[("v_in", p + 1, j)])
        if got != expected:
            raise AssertionError(f"in(v_{p+1}^{j}) coverers {got} != {expected}")
    got = coverers(eidx[("e", p)])
    if got != {sidx[("S", p, 0)]}:
        raise AssertionError(f"e_p coverers {got}, expected only S_p^1")
    for j in range(n):
        expected = {sidx[("T", p + 1, j)]}
        got = coverers(eidx[("u_in", p + 1, j)])
        if got != expected:
            raise AssertionError(f"in(u_{p+1}^{j}) coverers {got} != {expected}")
    anchor = coverers(eidx[("u_out", p + 1, 0)])
    expected_anchor = {
        sidx[("S", 2 * p, j)]
        for j in reduction.isc.second.functions[p - 1][0]
    }
    if anchor != expected_anchor:
        raise AssertionError(
            f"out(u_{p+1}^1) coverers {anchor} != {expected_anchor}"
        )


def check_gap_with_exact_solver(
    reduction: ISCReduction, max_nodes: int = 5_000_000
) -> dict:
    """Corollary 5.8 on a concrete instance: optimum vs ISC output.

    Returns a report dict; raises AssertionError when the gap is violated.
    """
    optimum = len(exact_cover(reduction.system, max_nodes=max_nodes))
    expected = reduction.expected_optimum()
    cert = certificate_cover(reduction)
    report = {
        "isc_output": reduction.isc.output(),
        "baseline": reduction.baseline,
        "optimum": optimum,
        "expected": expected,
        "certificate_size": len(cert) if cert is not None else None,
    }
    if optimum != expected:
        raise AssertionError(f"gap violated: {report}")
    if cert is not None:
        if len(cert) != reduction.baseline:
            raise AssertionError(f"certificate has wrong size: {report}")
        if not reduction.system.is_cover(cert):
            raise AssertionError(f"certificate is not a cover: {report}")
    return report
