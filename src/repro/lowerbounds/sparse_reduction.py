"""Sparse Set Cover lower-bound instances (Section 6, Theorem 6.6).

Pipeline: t Equal Limited Pointer Chasing instances -> OR_t overlay into one
Intersection Set Chasing instance (footnote 5, Lemma 6.5) -> the Section 5
reduction.  Because each overlaid function is a union of t single-valued
functions, and no function is r-non-injective, every S-type set of the
reduced instance has cardinality O(rt): the instance is O~(t)-sparse while
the optimum still separates baseline vs baseline+1 by the OR of the
equalities.

:func:`sparse_certificates` packages the quantities Theorem 6.6 talks
about: the measured sparsity ``s``, the bound ``rt + O(1)``, and the gap
verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.communication.pointer_chasing import (
    EqualPointerChasing,
    is_r_non_injective,
    random_equal_pointer_chasing,
)
from repro.communication.set_chasing import overlay_equal_pointer_chasing
from repro.lowerbounds.isc_reduction import ISCReduction, reduce_isc_to_set_cover
from repro.utils.rng import as_generator

__all__ = ["SparseReduction", "build_sparse_instance", "sparse_certificates"]


@dataclass
class SparseReduction:
    """A sparse lower-bound instance and its provenance."""

    reduction: ISCReduction
    epc_instances: list[EqualPointerChasing]
    r: int
    t: int

    @property
    def or_of_equalities(self) -> bool:
        """OR_t of the Equal (Limited) Pointer Chasing outputs."""
        return any(inst.output() for inst in self.epc_instances)

    @property
    def sparsity_bound(self) -> int:
        """S-type sets hold <= r t chase elements + out + e + anchor."""
        return self.r * self.t + 3

    def measured_sparsity(self) -> int:
        return self.reduction.system.sparsity()


def build_sparse_instance(
    n: int,
    p: int,
    t: int,
    r: "int | None" = None,
    seed: "int | np.random.Generator | None" = None,
    max_resample: int = 50,
) -> SparseReduction:
    """Generate t EPC instances (none r-non-injective) and reduce.

    Functions that happen to be r-non-injective are resampled — the limited
    promise of Definition 6.3 under which the sparse bound holds.  With the
    default r = ceil(log2 n) + 1 random functions violate it rarely.
    """
    rng = as_generator(seed)
    if r is None:
        r = int(np.ceil(np.log2(max(n, 2)))) + 1

    instances: list[EqualPointerChasing] = []
    for _ in range(t):
        for _attempt in range(max_resample):
            candidate = random_equal_pointer_chasing(n, p, r=r, seed=rng)
            non_injective = any(
                is_r_non_injective(f, r)
                for chain in (candidate.first, candidate.second)
                for f in chain.functions
            )
            if not non_injective:
                instances.append(candidate)
                break
        else:
            raise RuntimeError(
                f"could not sample an r-injective EPC instance in "
                f"{max_resample} attempts (n={n}, r={r})"
            )

    isc = overlay_equal_pointer_chasing(instances, seed=rng)
    reduction = reduce_isc_to_set_cover(isc)
    return SparseReduction(reduction=reduction, epc_instances=instances, r=r, t=t)


def sparse_certificates(sparse: SparseReduction) -> dict:
    """The Theorem 6.6 report: sparsity, bound, expected optimum gap."""
    reduction = sparse.reduction
    return {
        "n_chasing": reduction.n_chasing,
        "p": reduction.p,
        "t": sparse.t,
        "r": sparse.r,
        "elements": reduction.system.n,
        "sets": reduction.system.m,
        "sparsity": sparse.measured_sparsity(),
        "sparsity_bound": sparse.sparsity_bound,
        "or_equal": sparse.or_of_equalities,
        "isc_output": reduction.isc.output(),
        "expected_optimum": reduction.expected_optimum(),
        "baseline": reduction.baseline,
    }
