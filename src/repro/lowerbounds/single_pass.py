"""Two-party 2-vs-3 cover instances (Section 3, Theorems 3.1/3.8).

Deciding whether Alice's and Bob's sets admit a cover of size 2 is exactly
(Many vs Many)-Set Disjointness on the complements: ``U = ra + rb`` iff
``complement(ra)`` and ``complement(rb)`` are disjoint.  The generator
produces instances where

* no single set covers U, and no two same-party sets cover U (each party
  has a *blind spot* element missing from all of its sets), so a 2-cover is
  necessarily cross-party;
* a size-3 cover always exists (a planted triple), so the optimum is either
  2 or 3 — the (3/2 - eps) gap of Theorem 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.setsystem.set_system import SetSystem
from repro.utils.rng import as_generator

__all__ = ["TwoVsThreeInstance", "two_vs_three_instance"]


@dataclass
class TwoVsThreeInstance:
    """A two-party instance with optimum 2 or 3 by construction."""

    system: SetSystem  # Alice's sets first, then Bob's (stream order)
    alice_ids: list[int]
    bob_ids: list[int]
    has_two_cover: bool

    @property
    def expected_optimum(self) -> int:
        return 2 if self.has_two_cover else 3


def two_vs_three_instance(
    n: int,
    m_alice: int,
    m_bob: int,
    plant_two_cover: bool,
    density: float = 0.5,
    seed: "int | np.random.Generator | None" = None,
    max_resample: int = 200,
) -> TwoVsThreeInstance:
    """Generate an instance whose optimum is 2 iff ``plant_two_cover``.

    Elements n-2 and n-1 are the blind spots: Alice's sets never contain
    n-2, Bob's never contain n-1 — blocking same-party 2-covers and any
    1-cover.  A crossing pair (ra, rb) with ``ra + rb = U`` is planted when
    requested; otherwise sampling is repeated until no crossing 2-cover
    exists.  A planted triple (two Alice halves + one Bob patch) keeps the
    optimum at 3 in the negative case.
    """
    if n < 6:
        raise ValueError(f"need n >= 6, got {n}")
    if m_alice < 2 or m_bob < 1:
        raise ValueError("need at least two Alice sets and one Bob set")
    rng = as_generator(seed)
    blind_alice, blind_bob = n - 2, n - 1
    body = list(range(n - 2))

    def random_alice() -> frozenset[int]:
        members = {e for e in body if rng.random() < density}
        members.add(blind_bob)  # may contain Bob's blind spot, not its own
        return frozenset(members - {blind_alice})

    def random_bob() -> frozenset[int]:
        members = {e for e in body if rng.random() < density}
        members.add(blind_alice)
        return frozenset(members - {blind_bob})

    def has_crossing_cover(alice: list[frozenset[int]], bob: list[frozenset[int]]) -> bool:
        full = frozenset(range(n))
        return any(ra | rb == full for ra in alice for rb in bob)

    for _ in range(max_resample):
        alice = [random_alice() for _ in range(m_alice)]
        bob = [random_bob() for _ in range(m_bob)]

        # The planted 3-cover: two Alice halves + a Bob patch for blind_alice.
        half = (n - 2) // 2
        alice[0] = frozenset(body[:half]) | {blind_bob}
        alice[1] = frozenset(body[half:]) | {blind_bob}
        bob[0] = frozenset({blind_alice})

        if plant_two_cover:
            pivot = frozenset(e for e in body if rng.random() < 0.5)
            ra = pivot | {blind_bob}
            rb = (frozenset(body) - pivot) | {blind_alice}
            alice[-1] = ra
            bob[-1] = rb | frozenset(
                e for e in body if rng.random() < density
            ) - {blind_bob}
            return TwoVsThreeInstance(
                system=SetSystem(n, [sorted(r) for r in alice + bob]),
                alice_ids=list(range(m_alice)),
                bob_ids=list(range(m_alice, m_alice + m_bob)),
                has_two_cover=True,
            )
        if not has_crossing_cover(alice, bob):
            return TwoVsThreeInstance(
                system=SetSystem(n, [sorted(r) for r in alice + bob]),
                alice_ids=list(range(m_alice)),
                bob_ids=list(range(m_alice, m_alice + m_bob)),
                has_two_cover=False,
            )
    raise RuntimeError(
        "could not sample a no-2-cover instance; lower the density or m"
    )
