"""Tests for ``algGeomSC`` (Figure 4.1, Theorem 4.6)."""

from __future__ import annotations

import math

import pytest

from repro.geometry import (
    GeometricSetCover,
    ShapeStream,
    figure_1_2_instance,
    geometric_set_cover,
    random_disc_instance,
    random_fat_triangle_instance,
    random_rect_instance,
)
from repro.streaming.stream import StreamAccessError


@pytest.mark.parametrize(
    "make",
    [random_disc_instance, random_rect_instance, random_fat_triangle_instance],
    ids=["discs", "rects", "triangles"],
)
class TestCorrectness:
    def test_produces_cover(self, make):
        inst = make(50, 35, seed=8)
        stream = ShapeStream(inst)
        result = geometric_set_cover(stream, seed=1, sample_constant=0.5)
        assert stream.verify_solution(result.selection)
        assert result.feasible

    def test_deterministic(self, make):
        inst = make(30, 25, seed=9)
        a = geometric_set_cover(ShapeStream(inst), seed=5)
        b = geometric_set_cover(ShapeStream(inst), seed=5)
        assert a.selection == b.selection


class TestShapeStream:
    def test_pass_counting(self):
        inst = random_disc_instance(10, 5, seed=0)
        stream = ShapeStream(inst)
        list(stream.iterate())
        list(stream.iterate())
        assert stream.passes == 2

    def test_nested_pass_rejected(self):
        inst = random_disc_instance(10, 5, seed=0)
        stream = ShapeStream(inst)
        iterator = stream.iterate()
        next(iterator)
        with pytest.raises(StreamAccessError):
            next(stream.iterate())
        iterator.close()

    def test_metadata(self):
        inst = random_disc_instance(10, 5, seed=0)
        stream = ShapeStream(inst)
        assert stream.n == 10
        assert stream.m == inst.m
        assert len(stream.points) == 10


class TestResources:
    def test_pass_bound(self):
        inst = random_disc_instance(60, 40, seed=10)
        stream = ShapeStream(inst)
        result = geometric_set_cover(stream, delta=0.25, seed=2)
        # 3 passes per iteration * ceil(1/delta) + final pass.
        assert result.passes <= 3 * 4 + 1

    def test_delta_validated(self):
        with pytest.raises(ValueError):
            GeometricSetCover(delta=0.5)

    def test_space_independent_of_m(self):
        """Theorem 4.6's headline: O~(n) space regardless of the number of
        shapes.  Quadrupling m must not scale the peak accordingly."""
        small = random_rect_instance(48, 30, seed=11)
        big = random_rect_instance(48, 120, seed=11)
        mem_small = geometric_set_cover(
            ShapeStream(small), seed=3, sample_constant=0.5
        ).peak_memory_words
        mem_big = geometric_set_cover(
            ShapeStream(big), seed=3, sample_constant=0.5
        ).peak_memory_words
        assert mem_big < 2.5 * mem_small

    def test_figure12_instance_stays_cheap(self):
        """On the quadratic-rectangles construction the canonical pool keeps
        memory near-linear even though m = Theta(n^2)."""
        inst = figure_1_2_instance(32)  # m = 256
        stream = ShapeStream(inst)
        result = geometric_set_cover(stream, seed=4, sample_constant=0.5)
        assert stream.verify_solution(result.selection)
        assert result.peak_memory_words < inst.m * inst.n  # far below store-all

    def test_mode_override(self):
        inst = random_rect_instance(30, 20, seed=12)
        result = geometric_set_cover(
            ShapeStream(inst), seed=5, mode="dedupe"
        )
        assert result.extra["mode"] == "dedupe"

    def test_approximation_near_optimal_on_planted_cover(self):
        from repro.offline import exact_cover

        inst = random_disc_instance(40, 25, seed=13)
        optimum = len(exact_cover(inst.to_set_system()))
        result = geometric_set_cover(ShapeStream(inst), seed=6, sample_constant=0.5)
        n = inst.n
        assert result.solution_size <= max(
            4 * (math.log(n) + 1) * optimum, optimum + 4
        )
