"""Tests for the paper's main algorithm, ``iterSetCover`` (Figure 1.3)."""

from __future__ import annotations

import math

import pytest

from repro.core import IterSetCover, IterSetCoverConfig, iter_set_cover
from repro.offline import ExactSolver
from repro.setsystem import SetSystem
from repro.streaming import SetStream
from repro.workloads import planted_instance, uniform_random_instance


class TestConfig:
    def test_iterations(self):
        assert IterSetCoverConfig(delta=1.0).iterations == 1
        assert IterSetCoverConfig(delta=0.5).iterations == 2
        assert IterSetCoverConfig(delta=0.34).iterations == 3
        assert IterSetCoverConfig(delta=0.25).iterations == 4

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_delta_validated(self, bad):
        with pytest.raises(ValueError):
            IterSetCoverConfig(delta=bad)

    def test_sample_size_grows_with_k(self):
        config = IterSetCoverConfig(delta=0.5)
        assert config.sample_size(256, 256, 8, 1.0) > config.sample_size(
            256, 256, 2, 1.0
        )

    def test_sample_size_grows_with_delta(self):
        low = IterSetCoverConfig(delta=0.25).sample_size(4096, 100, 2, 1.0)
        high = IterSetCoverConfig(delta=0.75).sample_size(4096, 100, 2, 1.0)
        assert high > low

    def test_polylog_toggle(self):
        with_logs = IterSetCoverConfig(delta=0.5)
        without = IterSetCoverConfig(delta=0.5, use_polylog_factors=False)
        assert with_logs.sample_size(256, 256, 2, 1.0) > without.sample_size(
            256, 256, 2, 1.0
        )


class TestCorrectness:
    def test_covers_tiny(self, tiny_system):
        stream = SetStream(tiny_system)
        result = iter_set_cover(stream, delta=1.0, seed=0)
        assert stream.verify_solution(result.selection)
        assert result.feasible

    def test_empty_universe(self):
        result = iter_set_cover(SetStream(SetSystem(0, [])), seed=0)
        assert result.selection == []
        assert result.passes == 0

    def test_infeasible_reported(self, infeasible_system):
        result = iter_set_cover(SetStream(infeasible_system), delta=0.5, seed=0)
        assert not result.feasible

    @pytest.mark.parametrize("delta", [1.0, 0.5, 0.34])
    def test_covers_uniform_instances(self, delta):
        system = uniform_random_instance(60, 50, density=0.12, seed=5)
        stream = SetStream(system)
        result = iter_set_cover(stream, delta=delta, seed=3)
        assert stream.verify_solution(result.selection)

    def test_deterministic_given_seed(self, planted_small):
        a = iter_set_cover(SetStream(planted_small.system), delta=0.5, seed=9)
        b = iter_set_cover(SetStream(planted_small.system), delta=0.5, seed=9)
        assert a.selection == b.selection


class TestResourceShape:
    def test_pass_bound(self, planted_small):
        """Theorem 2.8: at most 2/delta passes plus the cleanup pass."""
        for delta in (1.0, 0.5, 0.25):
            stream = SetStream(planted_small.system)
            result = iter_set_cover(stream, delta=delta, seed=1)
            assert result.passes <= 2 * math.ceil(1 / delta) + 1
            assert result.passes == stream.passes

    def test_cleanup_accounted_in_passes(self, planted_small):
        stream = SetStream(planted_small.system)
        result = iter_set_cover(stream, delta=0.5, seed=1)
        assert result.cleanup_passes in (0, 1)

    def test_early_exit_when_covered(self):
        # One giant set: first iteration covers everything; later
        # iterations are skipped, so only 2 passes happen even at small delta.
        system = SetSystem(10, [list(range(10)), [0], [1]])
        stream = SetStream(system)
        result = iter_set_cover(stream, delta=0.25, seed=0)
        assert result.passes == 2
        assert result.solution_size == 1

    def test_memory_scales_with_parallel_guesses(self, planted_small):
        result = iter_set_cover(SetStream(planted_small.system), delta=0.5, seed=2)
        n = planted_small.system.n
        guesses = len(result.guess_stats)
        # Each guess holds at least the n-word uncovered bitmap.
        assert result.peak_memory_words >= n * guesses

    def test_guess_stats_present_for_all_powers(self, planted_small):
        result = iter_set_cover(SetStream(planted_small.system), delta=0.5, seed=2)
        n = planted_small.system.n
        expected_guesses = math.floor(math.log2(n)) + 1
        assert len(result.guess_stats) == expected_guesses


class TestApproximation:
    def test_recovers_planted_optimum_with_exact_solver(self):
        planted = planted_instance(n=80, m=50, opt=5, seed=21)
        stream = SetStream(planted.system)
        result = IterSetCover(
            config=IterSetCoverConfig(delta=0.5),
            solver=ExactSolver(),
            seed=4,
        ).solve(stream)
        assert stream.verify_solution(result.selection)
        # O(rho/delta) with rho=1, delta=1/2: small constant times OPT.
        assert result.solution_size <= 4 * planted.opt

    def test_greedy_solver_stays_logarithmic(self, planted_small):
        stream = SetStream(planted_small.system)
        result = iter_set_cover(stream, delta=0.5, seed=5)
        n = planted_small.system.n
        bound = 4 * (math.log(n) + 1) * planted_small.opt / 0.5
        assert result.solution_size <= bound

    def test_best_k_is_reported(self, planted_small):
        result = iter_set_cover(SetStream(planted_small.system), delta=0.5, seed=5)
        assert result.best_k in result.guess_stats


class TestSizeTestSemantics:
    def test_heavy_sets_picked_immediately(self):
        """A set covering everything passes any Size Test and is picked in
        the first pass without being stored."""
        system = SetSystem(20, [list(range(20))] + [[i] for i in range(20)])
        stream = SetStream(system)
        result = iter_set_cover(stream, delta=1.0, seed=0)
        assert result.solution_size == 1
        stats = result.guess_stats[result.best_k]
        assert stats.heavy_picks >= 1

    def test_solution_indices_valid(self, planted_small):
        result = iter_set_cover(SetStream(planted_small.system), delta=0.5, seed=6)
        m = planted_small.system.m
        assert all(0 <= i < m for i in result.selection)
        assert len(set(result.selection)) == len(result.selection)


class TestFusedSizeTest:
    """The vectorized per-chunk Size-Test replay is pinned bit-identical
    to the row-by-row ``observe_sample_pass`` loop it replaces."""

    def _solve(self, system, fused: bool, seed: int = 7):
        class Pinned(IterSetCover):
            fused_size_test = fused

        return Pinned(
            config=IterSetCoverConfig(delta=0.5, backend="numpy"), seed=seed
        ).solve(SetStream(system))

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_whole_solve_matches_row_replay(self, seed):
        system = uniform_random_instance(n=120, m=90, density=0.08, seed=seed)
        fused = self._solve(system, fused=True, seed=seed)
        plain = self._solve(system, fused=False, seed=seed)
        assert fused.selection == plain.selection
        assert fused.passes == plain.passes
        assert fused.peak_memory_words == plain.peak_memory_words
        assert fused.best_k == plain.best_k
        for k, stats in plain.guess_stats.items():
            other = fused.guess_stats[k]
            assert other.heavy_picks == stats.heavy_picks
            assert other.offline_picks == stats.offline_picks
            assert other.cleanup_picks == stats.cleanup_picks
            assert other.sample_sizes == stats.sample_sizes
            assert other.peak_memory_words == stats.peak_memory_words

    def test_chunk_observation_matches_row_observation(self):
        import copy

        import numpy as np

        from repro.core.iter_set_cover import _GuessState
        from repro.setsystem.packed import bitmap_kernel
        from repro.streaming.memory import MemoryMeter

        n = 96
        kernel = bitmap_kernel(n, "numpy")
        rng = np.random.default_rng(5)
        for trial in range(5):
            guess = _GuessState(4, n, MemoryMeter(label="pin"), kernel)
            sample = sorted(rng.choice(n, size=24, replace=False).tolist())
            guess.sample = kernel.from_indices(sample)
            guess.sample_size = len(sample)
            guess.leftover = guess.sample
            guess.solution_set = {3}
            guess.solution = [3]
            rows = []
            for set_id in range(10):
                members = rng.choice(n, size=rng.integers(1, 40), replace=False)
                rows.append((set_id, kernel.from_indices(sorted(members.tolist()))))
            twin = copy.deepcopy(guess)
            for set_id, row in rows:
                twin.observe_sample_pass(
                    set_id, kernel.intersect(row, twin.sample)
                )
            ids = [set_id for set_id, _ in rows]
            matrix = np.stack(
                [kernel.intersect(row, guess.sample) for _, row in rows]
            )
            batch = guess.observe_sample_chunk(ids, matrix)
            assert guess.solution == twin.solution
            assert sorted(batch.ids) == sorted(twin.new_picks)
            assert guess.projection_ids == twin.projection_ids
            assert kernel.to_mask_int(guess.leftover) == kernel.to_mask_int(
                twin.leftover
            )
            for mine, theirs in zip(guess.projections, twin.projections):
                assert kernel.to_mask_int(mine) == kernel.to_mask_int(theirs)
            assert guess.stats.heavy_picks == twin.stats.heavy_picks
            assert guess._scratch_words == twin._scratch_words
