"""Executable-documentation checks: doctests and the README quickstart."""

from __future__ import annotations

import doctest
import importlib

import pytest

# Fetched via importlib: the package __init__ re-exports a *function* named
# iter_set_cover, which shadows the module attribute of the same name.
DOCTEST_MODULES = [
    "repro.utils.bitset",
    "repro.utils.mathutil",
    "repro.setsystem.set_system",
    "repro.streaming.stream",
    "repro.core.iter_set_cover",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests_pass(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"


def test_readme_quickstart_snippet():
    """The README's quickstart block, executed verbatim in spirit."""
    from repro import IterSetCover, IterSetCoverConfig, SetStream
    from repro.workloads import planted_instance

    planted = planted_instance(n=400, m=300, opt=6, seed=2024)
    stream = SetStream(planted.system)
    result = IterSetCover(
        config=IterSetCoverConfig(delta=0.5),
        seed=7,
    ).solve(stream)

    assert stream.verify_solution(result.selection)
    assert result.passes >= 1
    assert result.peak_memory_words > 0


def test_public_api_surface():
    """Everything advertised in ``repro.__all__`` resolves."""
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_design_doc_experiment_index_matches_bench_files():
    """Every bench target named in DESIGN.md exists on disk."""
    import re
    from pathlib import Path

    design = Path(__file__).parent.parent / "DESIGN.md"
    text = design.read_text()
    targets = set(re.findall(r"`benchmarks/(bench_\w+\.py)`", text))
    assert targets, "DESIGN.md lists no bench targets?"
    bench_dir = Path(__file__).parent.parent / "benchmarks"
    for target in targets:
        assert (bench_dir / target).exists(), f"missing bench file {target}"


def test_experiments_doc_report_files_exist_after_bench_run():
    """EXPERIMENTS.md references bench files that actually exist."""
    import re
    from pathlib import Path

    experiments = Path(__file__).parent.parent / "EXPERIMENTS.md"
    text = experiments.read_text()
    named = set(re.findall(r"`(bench_\w+\.py)`", text))
    bench_dir = Path(__file__).parent.parent / "benchmarks"
    for target in named:
        assert (bench_dir / target).exists(), f"missing bench file {target}"
