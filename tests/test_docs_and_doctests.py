"""Executable-documentation checks: doctests, markdown code blocks, links."""

from __future__ import annotations

import doctest
import importlib
import re
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).parent.parent

#: Markdown documents whose fenced ```python blocks must execute and whose
#: relative links must resolve.
DOC_FILES = [
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/REPRODUCING.md",
    "docs/DISTRIBUTED.md",
]

# Fetched via importlib: the package __init__ re-exports a *function* named
# iter_set_cover, which shadows the module attribute of the same name.
DOCTEST_MODULES = [
    "repro.utils.bitset",
    "repro.utils.mathutil",
    "repro.engine",
    "repro.engine.plan",
    "repro.engine.merge",
    "repro.engine.transport",
    "repro.setsystem.set_system",
    "repro.setsystem.io",
    "repro.setsystem.shards",
    "repro.streaming.stream",
    "repro.streaming.sharded",
    "repro.core.iter_set_cover",
    "repro.partial.streaming",
    "repro.workloads.coverage",
    "repro.workloads.random_instances",
    "repro.workloads.skewed",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests_pass(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"


def test_readme_quickstart_snippet():
    """The README's quickstart block, executed verbatim in spirit."""
    from repro import IterSetCover, IterSetCoverConfig, SetStream
    from repro.workloads import planted_instance

    planted = planted_instance(n=400, m=300, opt=6, seed=2024)
    stream = SetStream(planted.system)
    result = IterSetCover(
        config=IterSetCoverConfig(delta=0.5),
        seed=7,
    ).solve(stream)

    assert stream.verify_solution(result.selection)
    assert result.passes >= 1
    assert result.peak_memory_words > 0


def test_public_api_surface():
    """Everything advertised in ``repro.__all__`` resolves."""
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_design_doc_experiment_index_matches_bench_files():
    """Every bench target named in DESIGN.md exists on disk."""
    import re
    from pathlib import Path

    design = Path(__file__).parent.parent / "DESIGN.md"
    text = design.read_text()
    targets = set(re.findall(r"`benchmarks/(bench_\w+\.py)`", text))
    assert targets, "DESIGN.md lists no bench targets?"
    bench_dir = Path(__file__).parent.parent / "benchmarks"
    for target in targets:
        assert (bench_dir / target).exists(), f"missing bench file {target}"


def test_experiments_doc_report_files_exist_after_bench_run():
    """EXPERIMENTS.md references bench files that actually exist."""
    experiments = _REPO_ROOT / "EXPERIMENTS.md"
    text = experiments.read_text()
    named = set(re.findall(r"`(bench_\w+\.py)`", text))
    bench_dir = _REPO_ROOT / "benchmarks"
    for target in named:
        assert (bench_dir / target).exists(), f"missing bench file {target}"


# ----------------------------------------------------------------------
# Markdown guides: executable code blocks + link integrity (the CI docs job)
# ----------------------------------------------------------------------
def _python_blocks(path: Path) -> list[tuple[int, str]]:
    """(line, source) for every fenced ```python block in a markdown file."""
    text = path.read_text()
    blocks = []
    for match in re.finditer(r"```python\n(.*?)```", text, flags=re.DOTALL):
        line = text[: match.start()].count("\n") + 2
        blocks.append((line, match.group(1)))
    return blocks


@pytest.mark.parametrize("doc", DOC_FILES)
def test_markdown_python_blocks_execute(doc):
    """Every ```python block in the guides runs clean, top to bottom."""
    path = _REPO_ROOT / doc
    blocks = _python_blocks(path)
    for line, source in blocks:
        namespace: dict = {"__name__": f"docblock:{doc}:{line}"}
        try:
            exec(compile(source, f"{doc}:{line}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"{doc} code block at line {line} failed: {exc!r}")


@pytest.mark.parametrize("doc", DOC_FILES + ["EXPERIMENTS.md", "DESIGN.md", "ROADMAP.md"])
def test_markdown_relative_links_resolve(doc):
    """No dead relative links in the documentation set."""
    path = _REPO_ROOT / doc
    text = path.read_text()
    # Strip fenced code (mermaid arrows etc. are not links).
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for target in re.findall(r"\[[^\]]*\]\(([^)\s]+)\)", text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = (path.parent / target.split("#", 1)[0]).resolve()
        assert relative.exists(), f"{doc}: dead link to {target}"


def test_readme_links_the_guides():
    """The docs/ guide set is reachable from the README."""
    readme = (_REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/REPRODUCING.md" in readme
