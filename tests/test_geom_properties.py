"""Property-based tests for the geometry subsystem (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    AxisRect,
    CanonicalRepresentation,
    Disc,
    FatTriangle,
    Point,
)

seeds = st.integers(min_value=0, max_value=10**6)
sizes = st.integers(min_value=1, max_value=25)


def _random_points(n, rng):
    return {
        i: Point(float(x), float(y)) for i, (x, y) in enumerate(rng.random((n, 2)))
    }


def _union(pieces):
    return (
        frozenset().union(*[p.content for p in pieces]) if pieces else frozenset()
    )


def _truth(sample, shape):
    return frozenset(i for i, p in sample.items() if shape.contains(p))


class TestDecompositionLossless:
    """Union of canonical pieces == true projection, all shape families."""

    @settings(max_examples=40, deadline=None)
    @given(sizes, seeds)
    def test_rectangles(self, n, seed):
        rng = np.random.default_rng(seed)
        sample = _random_points(n, rng)
        rep = CanonicalRepresentation(sample, mode="split")
        x1, y1 = rng.random(), rng.random()
        shape = AxisRect(x1, y1, x1 + rng.random(), y1 + rng.random())
        pieces, _ = rep.add_shape(shape)
        assert _union(pieces) == _truth(sample, shape)
        assert len(pieces) <= 2

    @settings(max_examples=40, deadline=None)
    @given(sizes, seeds)
    def test_triangles(self, n, seed):
        rng = np.random.default_rng(seed)
        sample = _random_points(n, rng)
        rep = CanonicalRepresentation(sample, mode="split")
        xs, ys = rng.random(3), rng.random(3)
        shape = FatTriangle(xs[0], ys[0], xs[1], ys[1], xs[2], ys[2])
        pieces, _ = rep.add_shape(shape)
        assert _union(pieces) == _truth(sample, shape)
        assert len(pieces) <= 2

    @settings(max_examples=40, deadline=None)
    @given(sizes, seeds, st.sampled_from(["split", "dedupe"]))
    def test_discs(self, n, seed, mode):
        rng = np.random.default_rng(seed)
        sample = _random_points(n, rng)
        rep = CanonicalRepresentation(sample, mode=mode)
        shape = Disc(
            float(rng.random()), float(rng.random()), float(rng.uniform(0.05, 0.7))
        )
        pieces, _ = rep.add_shape(shape)
        assert _union(pieces) == _truth(sample, shape)


class TestPoolMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_pool_never_shrinks_and_words_accumulate(self, seed):
        rng = np.random.default_rng(seed)
        sample = _random_points(15, rng)
        rep = CanonicalRepresentation(sample, mode="split")
        last_pool = 0
        charged = 0
        for _ in range(10):
            x1, y1 = rng.random(), rng.random()
            shape = AxisRect(x1, y1, x1 + rng.random(), y1 + rng.random())
            _, words = rep.add_shape(shape)
            charged += words
            assert rep.pool_size >= last_pool
            last_pool = rep.pool_size
        assert rep.pool_words == charged

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_dedupe_pool_bounded_by_split_pieces(self, seed):
        """Dedupe realizes at most as many pool entries as there are
        distinct projections; split at most 2 per shape."""
        rng = np.random.default_rng(seed)
        sample = _random_points(12, rng)
        shapes = []
        for _ in range(8):
            x1, y1 = rng.random(), rng.random()
            shapes.append(AxisRect(x1, y1, x1 + rng.random(), y1 + rng.random()))
        dedupe = CanonicalRepresentation(sample, mode="dedupe")
        split = CanonicalRepresentation(sample, mode="split")
        for shape in shapes:
            dedupe.add_shape(shape)
            split.add_shape(shape)
        distinct = len({_truth(sample, s) for s in shapes} - {frozenset()})
        assert dedupe.pool_size == distinct
        assert split.pool_size <= 2 * len(shapes)


class TestContainmentProperties:
    @settings(max_examples=50, deadline=None)
    @given(seeds)
    def test_triangle_contains_its_centroid(self, seed):
        rng = np.random.default_rng(seed)
        xs, ys = rng.uniform(-5, 5, 3), rng.uniform(-5, 5, 3)
        tri = FatTriangle(xs[0], ys[0], xs[1], ys[1], xs[2], ys[2])
        centroid = Point(float(xs.mean()), float(ys.mean()))
        assert tri.contains(centroid)

    @settings(max_examples=50, deadline=None)
    @given(seeds)
    def test_disc_bounding_box_consistency(self, seed):
        rng = np.random.default_rng(seed)
        disc = Disc(float(rng.uniform(-3, 3)), float(rng.uniform(-3, 3)),
                    float(rng.uniform(0.1, 2)))
        p = Point(float(rng.uniform(-4, 4)), float(rng.uniform(-4, 4)))
        if disc.contains(p):
            assert disc.x_min - 1e-6 <= p.x <= disc.x_max + 1e-6

    @settings(max_examples=50, deadline=None)
    @given(seeds)
    def test_rect_contains_iff_coordinatewise(self, seed):
        rng = np.random.default_rng(seed)
        x1, y1 = rng.uniform(-2, 0), rng.uniform(-2, 0)
        rect = AxisRect(x1, y1, x1 + rng.uniform(0.1, 3), y1 + rng.uniform(0.1, 3))
        p = Point(float(rng.uniform(-3, 3)), float(rng.uniform(-3, 3)))
        expected = (rect.x1 <= p.x <= rect.x2) and (rect.y1 <= p.y <= rect.y2)
        # Epsilon band tolerance at the boundary.
        on_boundary = (
            min(abs(p.x - rect.x1), abs(p.x - rect.x2)) < 1e-6
            or min(abs(p.y - rect.y1), abs(p.y - rect.y2)) < 1e-6
        )
        if not on_boundary:
            assert rect.contains(p) == expected
