"""Tests for the word-accounting memory meter."""

from __future__ import annotations

import pytest

from repro.streaming import MemoryBudgetExceeded, MemoryMeter


class TestChargeRelease:
    def test_peak_tracks_maximum(self):
        meter = MemoryMeter()
        meter.charge(10)
        meter.release(4)
        meter.charge(2)
        assert meter.current == 8
        assert meter.peak == 10

    def test_peak_updates_on_new_high(self):
        meter = MemoryMeter()
        meter.charge(5)
        meter.release(5)
        meter.charge(12)
        assert meter.peak == 12

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            MemoryMeter().charge(-1)

    def test_over_release_rejected(self):
        meter = MemoryMeter()
        meter.charge(3)
        with pytest.raises(ValueError):
            meter.release(4)

    def test_total_charged_accumulates(self):
        meter = MemoryMeter()
        meter.charge(3)
        meter.release(3)
        meter.charge(2)
        assert meter.total_charged == 5


class TestBudget:
    def test_budget_enforced(self):
        meter = MemoryMeter(budget=5)
        meter.charge(5)
        with pytest.raises(MemoryBudgetExceeded):
            meter.charge(1)

    def test_budget_allows_reuse_after_release(self):
        meter = MemoryMeter(budget=5)
        meter.charge(5)
        meter.release(3)
        meter.charge(3)  # back at the cap, fine
        assert meter.current == 5


class TestComposition:
    def test_reset_current_keeps_peak(self):
        meter = MemoryMeter()
        meter.charge(7)
        meter.reset_current()
        assert meter.current == 0
        assert meter.peak == 7

    def test_merge_peak_adds(self):
        a, b = MemoryMeter(), MemoryMeter()
        a.charge(3)
        b.charge(4)
        a.merge_peak(b)
        assert a.peak == 7

    def test_snapshot(self):
        meter = MemoryMeter(budget=10, label="x")
        meter.charge(2)
        snap = meter.snapshot()
        assert snap == {"label": "x", "current": 2, "peak": 2, "budget": 10}
