"""Tests for the offline solvers: greedy, exact branch-and-bound, LP."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.offline import (
    ExactSolver,
    GreedySolver,
    InfeasibleInstanceError,
    LPRoundingSolver,
    SearchBudgetExceeded,
    exact_cover,
    fractional_optimum,
    greedy_cover,
)
from repro.setsystem import SetSystem
from repro.utils.mathutil import harmonic
from repro.workloads import nested_chain_instance, planted_instance


def feasible_systems(max_n=8, max_m=8):
    """Hypothesis strategy for small *feasible* systems."""

    def build(n, raw_sets):
        sets = [set(s) for s in raw_sets] or [set()]
        # Patch feasibility deterministically.
        covered = set().union(*sets)
        for e in range(n):
            if e not in covered:
                sets[e % len(sets)].add(e)
        return SetSystem(n, sets)

    return st.integers(min_value=1, max_value=max_n).flatmap(
        lambda n: st.lists(
            st.sets(st.integers(min_value=0, max_value=n - 1)),
            min_size=1,
            max_size=max_m,
        ).map(lambda raw: build(n, raw))
    )


def brute_force_optimum(system: SetSystem) -> int:
    for k in range(0, system.m + 1):
        for combo in itertools.combinations(range(system.m), k):
            if system.is_cover(combo):
                return k
    raise AssertionError("infeasible instance reached brute force")


class TestGreedy:
    def test_tiny(self, tiny_system):
        cover = greedy_cover(tiny_system)
        assert tiny_system.is_cover(cover)
        assert len(cover) == 2

    def test_singletons(self, singleton_system):
        assert len(greedy_cover(singleton_system)) == 5

    def test_empty_universe(self):
        assert greedy_cover(SetSystem(0, [])) == []

    def test_infeasible_raises(self, infeasible_system):
        with pytest.raises(InfeasibleInstanceError):
            greedy_cover(infeasible_system)

    def test_deterministic_tie_break(self):
        system = SetSystem(2, [[0, 1], [0, 1]])
        assert greedy_cover(system) == [0]

    def test_worst_case_family_is_log_factor(self):
        system = nested_chain_instance(64)
        greedy_size = len(greedy_cover(system))
        assert greedy_size >= 4  # optimum is 2; greedy chases the chain
        assert system.is_cover(greedy_cover(system))

    def test_solver_interface(self, tiny_system):
        solver = GreedySolver()
        assert tiny_system.is_cover(solver.solve(tiny_system))
        assert solver.rho(100) == pytest.approx(harmonic(100))


class TestExact:
    def test_tiny_optimum(self, tiny_system):
        assert len(exact_cover(tiny_system)) == 2

    def test_singletons(self, singleton_system):
        assert len(exact_cover(singleton_system)) == 5

    def test_empty(self):
        assert exact_cover(SetSystem(0, [])) == []

    def test_infeasible(self, infeasible_system):
        with pytest.raises(InfeasibleInstanceError):
            exact_cover(infeasible_system)

    def test_beats_greedy_on_chain(self):
        system = nested_chain_instance(32)
        assert len(exact_cover(system)) == 2

    def test_planted_optimum_found(self):
        planted = planted_instance(n=40, m=25, opt=4, seed=3)
        assert len(exact_cover(planted.system)) == 4

    def test_node_budget(self):
        # Greedy seeds a suboptimal incumbent on the chain family, so the
        # search genuinely explores and must trip a 2-node budget.
        system = nested_chain_instance(64)
        with pytest.raises(SearchBudgetExceeded):
            exact_cover(system, max_nodes=2)

    def test_returns_original_indices(self):
        # Set 0 dominated by set 1; answer must reference surviving index.
        system = SetSystem(3, [[0], [0, 1], [2]])
        cover = exact_cover(system)
        assert system.is_cover(cover)
        assert all(0 <= i < system.m for i in cover)

    def test_solver_interface(self, tiny_system):
        solver = ExactSolver()
        assert len(solver.solve(tiny_system)) == 2
        assert solver.rho(10) == 1.0

    @settings(max_examples=60, deadline=None)
    @given(feasible_systems())
    def test_matches_brute_force(self, system):
        assert len(exact_cover(system)) == brute_force_optimum(system)

    @settings(max_examples=60, deadline=None)
    @given(feasible_systems())
    def test_exact_never_exceeds_greedy(self, system):
        assert len(exact_cover(system)) <= len(greedy_cover(system))


class TestLP:
    def test_fractional_lower_bounds_integral(self, tiny_system):
        value, x = fractional_optimum(tiny_system)
        assert value <= len(exact_cover(tiny_system)) + 1e-6
        assert np.all(x >= -1e-9)

    def test_fractional_covers_constraints(self, tiny_system):
        _, x = fractional_optimum(tiny_system)
        for element in range(tiny_system.n):
            mass = sum(
                x[i] for i, r in enumerate(tiny_system.sets) if element in r
            )
            assert mass >= 1 - 1e-6

    def test_infeasible(self, infeasible_system):
        with pytest.raises(InfeasibleInstanceError):
            fractional_optimum(infeasible_system)

    def test_empty(self):
        value, x = fractional_optimum(SetSystem(0, []))
        assert value == 0.0

    def test_rounding_produces_cover(self, uniform_small):
        solver = LPRoundingSolver(seed=0)
        cover = solver.solve(uniform_small)
        assert uniform_small.is_cover(cover)

    def test_rounding_near_optimal_on_planted(self):
        planted = planted_instance(n=50, m=30, opt=5, seed=9)
        solver = LPRoundingSolver(seed=1)
        cover = solver.solve(planted.system)
        assert planted.system.is_cover(cover)
        assert len(cover) <= 5 * (np.log(50) + 2)

    @settings(max_examples=40, deadline=None)
    @given(feasible_systems(max_n=7, max_m=7))
    def test_lp_sandwich(self, system):
        """LP optimum <= integral optimum <= greedy size."""
        value, _ = fractional_optimum(system)
        integral = brute_force_optimum(system)
        assert value <= integral + 1e-6
        assert integral <= len(greedy_cover(system))
