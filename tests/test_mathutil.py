"""Tests for the math helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.mathutil import ceil_div, ceil_log2, harmonic, ilog2, powers_of_two_up_to


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(6, 3) == 2

    def test_rounds_up(self):
        assert ceil_div(7, 3) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=10**4))
    def test_matches_float_ceil(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)


class TestLogs:
    def test_ilog2_powers(self):
        for i in range(20):
            assert ilog2(1 << i) == i

    def test_ceil_log2_sequence(self):
        assert [ceil_log2(k) for k in (1, 2, 3, 4, 5, 8, 9)] == [0, 1, 2, 2, 3, 3, 4]

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            ilog2(0)
        with pytest.raises(ValueError):
            ceil_log2(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_bracketing(self, n):
        assert 2 ** ilog2(n) <= n < 2 ** (ilog2(n) + 1)
        assert 2 ** ceil_log2(n) >= n


class TestHarmonic:
    def test_small_values(self):
        assert harmonic(0) == 0
        assert harmonic(1) == 1
        assert harmonic(2) == pytest.approx(1.5)
        assert harmonic(4) == pytest.approx(25 / 12)

    def test_asymptotic_agrees_with_sum(self):
        exact = sum(1.0 / i for i in range(1, 201))
        assert harmonic(200) == pytest.approx(exact, rel=1e-9)

    def test_monotone(self):
        values = [harmonic(k) for k in range(1, 50)]
        assert all(b > a for a, b in zip(values, values[1:]))


class TestPowersOfTwo:
    def test_examples(self):
        assert powers_of_two_up_to(1) == [1]
        assert powers_of_two_up_to(10) == [1, 2, 4, 8]
        assert powers_of_two_up_to(16) == [1, 2, 4, 8, 16]

    def test_covers_all_optima(self):
        # Any possible OPT in [1, n] is within factor 2 of some guess.
        for n in (5, 17, 100):
            guesses = powers_of_two_up_to(n)
            for opt in range(1, n + 1):
                assert any(k <= opt < 2 * k or k >= opt for k in guesses)

    def test_rejects_zero(self):
        import pytest

        with pytest.raises(ValueError):
            powers_of_two_up_to(0)
