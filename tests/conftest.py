"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.setsystem import SetSystem
from repro.workloads import planted_instance, uniform_random_instance


@pytest.fixture
def tiny_system() -> SetSystem:
    """A 4-element instance with optimum 2 ({0,1} + {2,3})."""
    return SetSystem(4, [[0, 1], [2, 3], [0, 2], [1], [3]])


@pytest.fixture
def singleton_system() -> SetSystem:
    """Each element coverable only by its own singleton: optimum n."""
    return SetSystem(5, [[0], [1], [2], [3], [4]])


@pytest.fixture
def infeasible_system() -> SetSystem:
    """Element 3 is in no set."""
    return SetSystem(4, [[0, 1], [2], [0, 2]])


@pytest.fixture
def planted_small():
    """A planted instance with known optimum 4."""
    return planted_instance(n=60, m=40, opt=4, seed=11)


@pytest.fixture
def uniform_small() -> SetSystem:
    return uniform_random_instance(40, 30, density=0.15, seed=7)
