"""Unit and property tests for the bitmask utilities."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitset import bits_of, count_bits, iter_bits, mask_of, universe_mask


class TestMaskOf:
    def test_empty(self):
        assert mask_of([]) == 0

    def test_single(self):
        assert mask_of([3]) == 0b1000

    def test_multiple(self):
        assert mask_of([0, 2, 3]) == 0b1101

    def test_duplicates_are_idempotent(self):
        assert mask_of([1, 1, 1]) == mask_of([1])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask_of([-1])

    def test_large_index(self):
        assert mask_of([1000]) == 1 << 1000


class TestBitsOf:
    def test_empty(self):
        assert bits_of(0) == []

    def test_sorted_output(self):
        assert bits_of(0b10110) == [1, 2, 4]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            list(iter_bits(-1))


class TestCountAndUniverse:
    def test_count(self):
        assert count_bits(0b1011) == 3

    def test_universe(self):
        assert universe_mask(4) == 0b1111

    def test_universe_zero(self):
        assert universe_mask(0) == 0

    def test_universe_negative_rejected(self):
        with pytest.raises(ValueError):
            universe_mask(-1)


@given(st.sets(st.integers(min_value=0, max_value=200)))
def test_roundtrip(indices):
    assert set(bits_of(mask_of(indices))) == indices


@given(st.sets(st.integers(min_value=0, max_value=200)))
def test_count_matches_cardinality(indices):
    assert count_bits(mask_of(indices)) == len(indices)


@given(
    st.sets(st.integers(min_value=0, max_value=100)),
    st.sets(st.integers(min_value=0, max_value=100)),
)
def test_mask_operations_mirror_set_operations(a, b):
    ma, mb = mask_of(a), mask_of(b)
    assert set(bits_of(ma | mb)) == a | b
    assert set(bits_of(ma & mb)) == a & b
    assert set(bits_of(ma & ~mb)) == a - b
