"""Integration tests: whole-pipeline flows across modules."""

from __future__ import annotations

import math

import pytest

from repro.baselines import (
    ChakrabartiWirth,
    DemaineEtAl,
    EmekRosen,
    MultiPassGreedy,
    SahaGetoor,
    StoreAllGreedy,
    ThresholdGreedy,
)
from repro.communication import random_intersection_set_chasing
from repro.core import IterSetCover, IterSetCoverConfig, iter_set_cover
from repro.geometry import ShapeStream, geometric_set_cover, random_disc_instance
from repro.lowerbounds import reduce_isc_to_set_cover
from repro.offline import ExactSolver, exact_cover
from repro.setsystem import SetSystem, verify_cover
from repro.streaming import SetStream
from repro.workloads import blog_watch_instance, planted_instance, zipf_instance


class TestEveryAlgorithmOnEveryWorkload:
    """The Figure 1.1 cross: every algorithm must cover every workload."""

    WORKLOADS = {
        "planted": lambda: planted_instance(n=64, m=48, opt=4, seed=1).system,
        "zipf": lambda: zipf_instance(64, 48, seed=2),
        "blog": lambda: blog_watch_instance(topics=64, blogs=24, seed=3),
    }

    ALGOS = {
        "store-all": lambda: StoreAllGreedy(),
        "multi-pass": lambda: MultiPassGreedy(),
        "threshold": lambda: ThresholdGreedy(),
        "er14": lambda: EmekRosen(),
        "cw16": lambda: ChakrabartiWirth(passes=2),
        "sg09": lambda: SahaGetoor(),
        "dimv14": lambda: DemaineEtAl(delta=0.5, seed=4),
        "iter": lambda: IterSetCover(seed=5),
    }

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("algo", ALGOS)
    def test_cover(self, workload, algo):
        system = self.WORKLOADS[workload]()
        stream = SetStream(system)
        result = self.ALGOS[algo]().solve(stream)
        verify_cover(system, result.selection)


class TestPaperHeadline:
    """Theorem 2.8 vs [DIMV14]: same space regime, exponentially fewer passes."""

    def test_pass_gap_at_small_delta(self):
        planted = planted_instance(n=256, m=128, opt=6, seed=7)
        delta = 0.34

        stream_iter = SetStream(planted.system)
        ours = IterSetCover(
            config=IterSetCoverConfig(delta=delta, sample_constant=0.05),
            seed=1,
        ).solve(stream_iter)

        stream_dimv = SetStream(planted.system)
        theirs = DemaineEtAl(
            delta=delta, k=planted.opt, seed=1, sample_constant=0.05
        ).solve(stream_dimv)

        assert stream_iter.verify_solution(ours.selection)
        assert stream_dimv.verify_solution(theirs.selection)
        assert ours.passes <= 2 * math.ceil(1 / delta) + 1
        assert theirs.passes > ours.passes

    def test_space_below_store_all(self):
        """O~(m n^delta) vs O(mn) on a dense instance.  Polylog factors and
        rho are stripped (they are inside the paper's O~ and dwarf n^delta
        at laptop scale); both the total across parallel guesses and the
        correct-guess peak must beat storing the input."""
        from repro.workloads import uniform_random_instance

        system = uniform_random_instance(256, 400, density=0.2, seed=8)
        stream = SetStream(system)
        result = IterSetCover(
            config=IterSetCoverConfig(
                delta=0.25,
                sample_constant=1.0,
                use_polylog_factors=False,
                include_rho=False,
            ),
            seed=2,
        ).solve(stream)
        store_all = StoreAllGreedy().solve(SetStream(system))
        assert result.feasible
        assert result.peak_memory_words < store_all.peak_memory_words
        best_guess_peak = result.guess_stats[result.best_k].peak_memory_words
        assert best_guess_peak * 10 < store_all.peak_memory_words


class TestExactRegime:
    def test_iter_with_exact_solver_on_reduction_instance(self):
        """Run the paper's algorithm on its own lower-bound instances: with
        rho = 1 and enough passes the reduction optimum is reproduced."""
        isc = random_intersection_set_chasing(n=2, p=2, max_out_degree=1, seed=3)
        reduction = reduce_isc_to_set_cover(isc)
        stream = SetStream(reduction.system)
        result = IterSetCover(
            config=IterSetCoverConfig(delta=1.0),
            solver=ExactSolver(),
            seed=0,
        ).solve(stream)
        assert stream.verify_solution(result.selection)
        optimum = len(exact_cover(reduction.system))
        # delta = 1: one iteration with a whole-universe sample = offline opt.
        assert result.solution_size == optimum


class TestGeometricVsAbstract:
    def test_geometric_algorithm_saves_space_on_abstract_view(self):
        """E5's comparison: algGeomSC's peak vs running the abstract
        iterSetCover on the projected set system of the same instance."""
        inst = random_disc_instance(64, 160, seed=5)
        geo = geometric_set_cover(ShapeStream(inst), seed=1, sample_constant=0.3)

        abstract = inst.to_set_system()
        stream = SetStream(abstract)
        abs_result = iter_set_cover(stream, delta=0.25, seed=1, sample_constant=0.3)

        assert geo.feasible and abs_result.feasible
        assert geo.peak_memory_words < abs_result.peak_memory_words


class TestSerializationRoundTripThroughSolve:
    def test_solve_after_reload(self, tmp_path):
        from repro.setsystem import load, save

        planted = planted_instance(n=30, m=20, opt=3, seed=9)
        path = tmp_path / "instance.json"
        save(planted.system, path)
        reloaded = load(path)
        result = iter_set_cover(SetStream(reloaded), delta=0.5, seed=3)
        assert reloaded.is_cover(result.selection)


class TestEmptyAndDegenerate:
    def test_single_element_single_set(self):
        system = SetSystem(1, [[0]])
        result = iter_set_cover(SetStream(system), delta=1.0, seed=0)
        assert result.solution_size == 1

    def test_duplicate_sets_handled(self):
        system = SetSystem(3, [[0, 1, 2]] * 5)
        result = iter_set_cover(SetStream(system), delta=0.5, seed=0)
        assert result.solution_size == 1

    def test_empty_sets_in_family(self):
        system = SetSystem(2, [[], [0], [], [1]])
        result = iter_set_cover(SetStream(system), delta=1.0, seed=0)
        assert result.solution_size == 2
