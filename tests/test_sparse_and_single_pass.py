"""Tests for the sparse reduction (Section 6) and 2-vs-3 instances (Section 3)."""

from __future__ import annotations

import pytest

from repro.lowerbounds import (
    build_sparse_instance,
    sparse_certificates,
    two_vs_three_instance,
)
from repro.offline import exact_cover


class TestSparseReduction:
    def test_sparsity_within_bound(self):
        for seed in range(5):
            sparse = build_sparse_instance(n=6, p=2, t=2, seed=seed)
            assert sparse.measured_sparsity() <= sparse.sparsity_bound

    def test_sparsity_grows_with_t(self):
        narrow = build_sparse_instance(n=8, p=2, t=1, seed=1)
        wide = build_sparse_instance(n=8, p=2, t=4, seed=1)
        assert wide.measured_sparsity() >= narrow.measured_sparsity()
        assert wide.sparsity_bound > narrow.sparsity_bound

    def test_reduction_gap_matches_isc(self):
        """The SetCover optimum always tracks the (overlaid) ISC output —
        the reduction itself is deterministic and exact."""
        for seed in range(4):
            sparse = build_sparse_instance(n=5, p=2, t=2, seed=seed)
            optimum = len(exact_cover(sparse.reduction.system, max_nodes=3_000_000))
            assert optimum == sparse.reduction.expected_optimum()

    def test_or_implies_isc(self):
        """Lemma 6.5 soundness direction: an EPC equality always yields an
        ISC intersection (hence the baseline optimum)."""
        hits = 0
        for seed in range(20):
            sparse = build_sparse_instance(n=6, p=2, t=1, seed=seed)
            if sparse.or_of_equalities:
                hits += 1
                assert sparse.reduction.isc.output()
        assert hits > 0

    def test_t_equals_one_is_exact(self):
        """With a single overlaid instance the ISC output equals the EPC
        output, so the SetCover gap decides Equal Pointer Chasing."""
        for seed in range(10):
            sparse = build_sparse_instance(n=7, p=2, t=1, seed=seed)
            assert sparse.reduction.isc.output() == sparse.or_of_equalities

    def test_functions_respect_r_promise(self):
        from repro.communication import is_r_non_injective

        sparse = build_sparse_instance(n=8, p=2, t=3, seed=3)
        for inst in sparse.epc_instances:
            for chain in (inst.first, inst.second):
                for f in chain.functions:
                    assert not is_r_non_injective(f, sparse.r)

    def test_certificates_report(self):
        sparse = build_sparse_instance(n=6, p=2, t=2, seed=4)
        report = sparse_certificates(sparse)
        assert report["sparsity"] <= report["sparsity_bound"]
        assert report["elements"] == sparse.reduction.system.n
        assert report["baseline"] == sparse.reduction.baseline


class TestTwoVsThree:
    @pytest.mark.parametrize("plant", [True, False])
    @pytest.mark.parametrize("seed", range(4))
    def test_optimum_is_as_planted(self, plant, seed):
        inst = two_vs_three_instance(
            n=12, m_alice=4, m_bob=4, plant_two_cover=plant, seed=seed
        )
        assert len(exact_cover(inst.system)) == inst.expected_optimum

    def test_no_single_set_covers(self):
        for plant in (True, False):
            inst = two_vs_three_instance(
                n=12, m_alice=4, m_bob=4, plant_two_cover=plant, seed=9
            )
            for r in inst.system.sets:
                assert len(r) < inst.system.n

    def test_two_cover_is_cross_party(self):
        inst = two_vs_three_instance(
            n=12, m_alice=4, m_bob=4, plant_two_cover=True, seed=2
        )
        alice = set(inst.alice_ids)
        bob = set(inst.bob_ids)
        import itertools

        for a, b in itertools.combinations(range(inst.system.m), 2):
            if inst.system.is_cover([a, b]):
                assert (a in alice) != (b in alice) or (
                    a in bob
                ) != (b in bob)
                # i.e. one from each side
                assert len({a, b} & alice) == 1 and len({a, b} & bob) == 1

    def test_stream_order_alice_first(self):
        inst = two_vs_three_instance(
            n=12, m_alice=3, m_bob=2, plant_two_cover=True, seed=3
        )
        assert inst.alice_ids == [0, 1, 2]
        assert inst.bob_ids == [3, 4]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            two_vs_three_instance(n=4, m_alice=2, m_bob=2, plant_two_cover=True)
        with pytest.raises(ValueError):
            two_vs_three_instance(n=10, m_alice=1, m_bob=1, plant_two_cover=True)
