"""Tests for the ``algRecoverBit`` decoder (Figure 3.1, Theorem 3.2)."""

from __future__ import annotations

import pytest

from repro.communication import (
    ExactDisjointnessOracle,
    SketchDisjointnessOracle,
    alg_recover_bits,
    encode_family,
    random_family,
    recovery_fraction,
)
from repro.communication.recover_bits import _prune


class TestPruning:
    def test_subset_artifact_rejected(self):
        collection = [frozenset({0, 1, 2})]
        _prune(collection, frozenset({0, 1}))
        assert collection == [frozenset({0, 1, 2})]

    def test_superset_replaces_artifact(self):
        collection = [frozenset({0, 1})]
        _prune(collection, frozenset({0, 1, 2}))
        assert collection == [frozenset({0, 1, 2})]

    def test_duplicate_ignored(self):
        collection = [frozenset({0})]
        _prune(collection, frozenset({0}))
        assert collection == [frozenset({0})]

    def test_incomparable_sets_coexist(self):
        collection = [frozenset({0, 1})]
        _prune(collection, frozenset({1, 2}))
        assert len(collection) == 2


class TestExactRecovery:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_full_recovery_from_full_message(self, seed):
        """The content of Theorem 3.2: the honest mn-bit message determines
        Alice's entire input through disjointness queries alone."""
        n, m = 32, 8
        family = random_family(n, m, seed=seed)
        oracle = ExactDisjointnessOracle(encode_family(family, n))
        result = alg_recover_bits(oracle, n, m, seed=seed + 50)
        assert result.exactly_matches(family)
        assert recovery_fraction(result, family) == 1.0

    def test_query_budget_reported(self):
        n, m = 24, 4
        family = random_family(n, m, seed=5)
        oracle = ExactDisjointnessOracle(encode_family(family, n))
        result = alg_recover_bits(oracle, n, m, seed=6)
        assert result.oracle_queries == oracle.queries
        assert result.message_bits == n * m

    def test_early_stop(self):
        n, m = 24, 4
        family = random_family(n, m, seed=7)
        oracle = ExactDisjointnessOracle(encode_family(family, n))
        result = alg_recover_bits(oracle, n, m, seed=8, stop_when=1)
        assert len(result.recovered) >= 1

    def test_query_size_validated(self):
        n, m = 8, 4
        family = random_family(n, m, seed=9)
        oracle = ExactDisjointnessOracle(encode_family(family, n))
        with pytest.raises(ValueError):
            alg_recover_bits(oracle, n, m, query_size=8, seed=10)


class TestRateLimitedRecovery:
    def test_starved_oracle_fails(self):
        """With far fewer than mn bits, decoding collapses — the information
        bottleneck behind the Omega(mn) bound."""
        n, m = 32, 8
        family = random_family(n, m, seed=11)
        msg = encode_family(family, n)
        sketch = SketchDisjointnessOracle(msg, budget_bits=(n * m) // 8, seed=12)
        result = alg_recover_bits(sketch, n, m, seed=13)
        assert recovery_fraction(result, family) < 0.5

    def test_recovery_monotone_in_budget(self):
        n, m = 32, 6
        family = random_family(n, m, seed=14)
        msg = encode_family(family, n)
        fractions = []
        for budget in (0, n * m // 2, n * m):
            sketch = SketchDisjointnessOracle(msg, budget_bits=budget, seed=15)
            result = alg_recover_bits(sketch, n, m, seed=16)
            fractions.append(recovery_fraction(result, family))
        assert fractions[-1] == 1.0
        assert fractions[0] <= fractions[-1]


class TestRecoveryFraction:
    def test_empty_family(self):
        from repro.communication import RecoveryResult

        result = RecoveryResult([], probes=0, oracle_queries=0, message_bits=0)
        assert recovery_fraction(result, []) == 1.0
