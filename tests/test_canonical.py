"""Tests for canonical representations (Definition 4.1, Lemmas 4.2-4.4)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    AxisRect,
    CanonicalRepresentation,
    Disc,
    Point,
    figure_1_2_instance,
    random_rect_instance,
)
from repro.geometry.canonical import build_x_tree


class TestXTree:
    def test_empty(self):
        assert build_x_tree([]) is None

    def test_single_leaf(self):
        node = build_x_tree([1.0])
        assert node.is_leaf
        assert node.split_x == 1.0

    def test_balanced_depth(self):
        xs = [float(i) for i in range(64)]
        node = build_x_tree(xs)

        def depth(n):
            if n is None or n.is_leaf:
                return 1
            return 1 + max(depth(n.left), depth(n.right))

        assert depth(node) <= math.ceil(math.log2(64)) + 1

    def test_slabs_partition(self):
        xs = [float(i) for i in range(10)]
        root = build_x_tree(xs)
        leaves = []

        def collect(n):
            if n is None:
                return
            if n.is_leaf:
                leaves.append((n.lo, n.hi))
                return
            collect(n.left)
            collect(n.right)

        collect(root)
        covered = sorted(leaves)
        assert covered[0][0] == 0 and covered[-1][1] == 10
        for (a, b), (c, _) in zip(covered, covered[1:]):
            assert b == c


class TestDecompositionCorrectness:
    def _points(self, n, seed=0):
        import numpy as np

        rng = np.random.default_rng(seed)
        return {i: Point(float(x), float(y)) for i, (x, y) in enumerate(rng.random((n, 2)))}

    def test_pieces_union_to_projection_rects(self):
        sample = self._points(40, seed=1)
        rep = CanonicalRepresentation(sample, mode="split")
        rect = AxisRect(0.2, 0.2, 0.7, 0.8)
        pieces, _ = rep.add_shape(rect)
        union = frozenset().union(*[p.content for p in pieces]) if pieces else frozenset()
        truth = frozenset(i for i, p in sample.items() if rect.contains(p))
        assert union == truth

    def test_at_most_two_pieces(self):
        sample = self._points(50, seed=2)
        rep = CanonicalRepresentation(sample, mode="split")
        for x1 in (0.1, 0.3, 0.5):
            pieces, _ = rep.add_shape(AxisRect(x1, 0.1, x1 + 0.3, 0.9))
            assert len(pieces) <= 2

    def test_dedupe_mode_single_piece(self):
        sample = self._points(30, seed=3)
        rep = CanonicalRepresentation(sample, mode="dedupe")
        pieces, _ = rep.add_shape(Disc(0.5, 0.5, 0.3))
        assert len(pieces) == 1

    def test_duplicate_shape_costs_no_new_words(self):
        sample = self._points(30, seed=4)
        rep = CanonicalRepresentation(sample, mode="split")
        rect = AxisRect(0.1, 0.1, 0.9, 0.9)
        _, first_words = rep.add_shape(rect)
        _, second_words = rep.add_shape(rect)
        assert first_words > 0
        assert second_words == 0

    def test_empty_shape_produces_nothing(self):
        sample = self._points(10, seed=5)
        rep = CanonicalRepresentation(sample, mode="split")
        pieces, words = rep.add_shape(AxisRect(5, 5, 6, 6))
        assert pieces == [] and words == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            CanonicalRepresentation({}, mode="bogus")

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_random_rects_decompose_exactly(self, n, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        sample = {
            i: Point(float(x), float(y)) for i, (x, y) in enumerate(rng.random((n, 2)))
        }
        rep = CanonicalRepresentation(sample, mode="split")
        x1, y1 = rng.random(), rng.random()
        rect = AxisRect(x1, y1, x1 + rng.random(), y1 + rng.random())
        pieces, _ = rep.add_shape(rect)
        union = frozenset().union(*[p.content for p in pieces]) if pieces else frozenset()
        assert union == frozenset(i for i, p in sample.items() if rect.contains(p))


class TestPoolGrowth:
    def test_figure12_pool_subquadratic(self):
        """The heart of Section 4: on the Figure 1.2 construction the
        distinct projections are Theta(n^2) but the canonical pool is
        near-linear."""
        for n in (16, 32):
            inst = figure_1_2_instance(n)
            rep = CanonicalRepresentation(
                {i: p for i, p in enumerate(inst.points)}, mode="split"
            )
            for shape in inst.shapes:
                rep.add_shape(shape)
            quadratic = inst.m  # == (n/2)^2, all distinct
            assert rep.pool_size < quadratic / 2
            assert rep.pool_size <= 4 * n * math.ceil(math.log2(n))

    def test_dedupe_mode_matches_distinct_projections(self):
        inst = figure_1_2_instance(12)
        rep = CanonicalRepresentation(
            {i: p for i, p in enumerate(inst.points)}, mode="dedupe"
        )
        for shape in inst.shapes:
            rep.add_shape(shape)
        assert rep.pool_size == inst.m  # dedupe alone cannot beat n^2/4

    def test_pool_words_accounts_descriptors(self):
        inst = random_rect_instance(20, 15, seed=6)
        rep = CanonicalRepresentation(
            {i: p for i, p in enumerate(inst.points)}, mode="split"
        )
        for shape in inst.shapes:
            rep.add_shape(shape)
        assert rep.pool_words == sum(
            p.description_words for p in rep.all_pieces()
        )
