"""Fault tolerance on the remote transport: retries, chaos, no hangs.

The contract under test (DESIGN.md §10 / ISSUE 6): under every chaos
mode and a mid-batch SIGKILL, a remote solve with retries enabled
completes **bit-identical** to the serial executor; with retries
disabled the PR 5 fail-loud contract holds verbatim — a loud typed
error naming the worker, never a hang, never a /dev/shm leak, never
partial state.  Chaos is injected by
:class:`~repro.engine.fault.ChaosProxy`, the same harness CI's
chaos-smoke job and the ``REPRO_CHAOS`` env knob use.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import zlib

import numpy as np
import pytest

from repro.baselines import MultiPassGreedy, ThresholdGreedy
from repro.core import iter_set_cover
from repro.engine import (
    CHAOS_ENV,
    CHAOS_MODES,
    ChaosProxy,
    FaultLog,
    RemoteScanExecutor,
    RetryPolicy,
    WorkerFaultError,
    WorkerServer,
    chaos_spec_from_env,
    executor_for,
    parse_chaos_spec,
    shutdown_pools,
)
from repro.engine.fault import chaos as chaos_mod
from repro.engine.transport import remote as remote_mod
from repro.engine.transport.remote import ProtocolError, spawn_local_worker
from repro.setsystem import SetSystem
from repro.setsystem.shards import write_shards
from repro.streaming import ShardedSetStream

ENCODINGS_UNDER_TEST = ("dense", "auto")
PLANNER_UNDER_TEST = (True, False)

#: Fast, deterministic retry bundle for the chaos sweeps: short timeouts
#: so blackhole faults surface in well under a second, seeded jitter.
FAST_RETRY = {
    "attempts": 4,
    "backoff": 0.01,
    "backoff_max": 0.05,
    "connect_timeout": 0.6,
    "idle_timeout": 0.6,
    "seed": 0,
}


@pytest.fixture(scope="module", autouse=True)
def _reap_pools():
    yield
    shutdown_pools()


@pytest.fixture(scope="module")
def worker_fleet(tmp_path_factory):
    """Two in-process workers serving the whole pytest tmp tree."""
    root = tmp_path_factory.getbasetemp()
    servers = [WorkerServer(root).start(), WorkerServer(root).start()]
    yield [server.address for server in servers]
    for server in servers:
        server.stop()


def _random_system(rng: np.random.Generator) -> SetSystem:
    n = int(rng.integers(1, 50))
    m = int(rng.integers(1, 30))
    sets = []
    for _ in range(m):
        size = int(rng.integers(0, n + 1))
        sets.append(rng.choice(n, size=size, replace=False).tolist())
    return SetSystem(n, sets)


def _fingerprint(result, stream):
    return (
        result.selection,
        result.passes,
        result.feasible,
        result.peak_memory_words,
        stream.resident_words,
    )


def _fault_threads() -> list:
    return [
        thread for thread in threading.enumerate()
        if thread.name.startswith(("repro-remote-", "repro-chaos-"))
    ]


def _assert_no_fault_threads(timeout: float = 5.0) -> None:
    """Lanes and chaos relays must all wind down — no silent leaks."""
    deadline = time.monotonic() + timeout
    while _fault_threads() and time.monotonic() < deadline:
        time.sleep(0.02)
    leaked = _fault_threads()
    assert not leaked, [thread.name for thread in leaked]


def _dead_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


# ----------------------------------------------------------------------
# RetryPolicy: validation, backoff, resolution
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_default_is_fail_loud_with_finite_idle_timeout(self):
        policy = RetryPolicy()
        assert policy.attempts == 1 and not policy.enabled
        # The one default that *changes* PR 5 behaviour: a wedged peer
        # errors after idle_timeout instead of hanging forever.
        assert policy.idle_timeout == 120.0
        assert policy.deadline is None
        assert policy.local_fallback is True
        assert RetryPolicy(attempts=3).enabled

    @pytest.mark.parametrize("knob, value, flag", [
        ("attempts", 0, "--retry-attempts"),
        ("attempts", 1.5, "--retry-attempts"),
        ("attempts", True, "--retry-attempts"),
        ("eject_after", 0, "--retry-eject-after"),
        ("backoff", -0.1, "--retry-backoff"),
        ("backoff_max", float("inf"), "--retry-backoff-max"),
        ("rejoin_backoff", -1, "--retry-rejoin-backoff"),
        ("jitter", 1.5, "--retry-jitter"),
        ("jitter", -0.1, "--retry-jitter"),
        ("connect_timeout", 0, "--connect-timeout"),
        ("ping_interval", 0, "--ping-interval"),
        ("idle_timeout", 0, "--idle-timeout"),
        ("deadline", -3, "--deadline"),
    ])
    def test_invalid_knobs_name_their_cli_flag(self, knob, value, flag):
        with pytest.raises(ValueError, match=flag.replace("-", "[-]")):
            RetryPolicy(**{knob: value})

    def test_optional_timeouts_accept_none(self):
        policy = RetryPolicy(idle_timeout=None, deadline=None)
        assert policy.idle_timeout is None and policy.deadline is None

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(attempts=5, backoff=0.1, backoff_max=0.3,
                             jitter=0.0)
        sleeps = [policy.backoff_seconds(a) for a in (1, 2, 3, 4)]
        assert sleeps == [0.1, 0.2, 0.3, 0.3]  # capped at backoff_max

    def test_backoff_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(attempts=3, backoff=1.0, jitter=0.5, seed=7)
        rng = policy.jitter_rng()
        values = [policy.backoff_seconds(1, rng) for _ in range(50)]
        assert all(0.5 <= value <= 1.0 for value in values)
        fresh = policy.jitter_rng()
        again = [policy.backoff_seconds(1, fresh) for _ in range(50)]
        assert values == again  # same seed, same jitter sequence

    def test_resolve(self):
        assert RetryPolicy.resolve(None) == RetryPolicy()
        policy = RetryPolicy(attempts=2)
        assert RetryPolicy.resolve(policy) is policy
        assert RetryPolicy.resolve({"attempts": 3}).attempts == 3
        with pytest.raises(ValueError, match="unknown retry policy knob"):
            RetryPolicy.resolve({"bogus": 1})
        with pytest.raises(ValueError, match="--retry-"):
            RetryPolicy.resolve("3 attempts please")

    def test_retry_knob_requires_remote_transport(self):
        with pytest.raises(ValueError, match="transport='remote'"):
            executor_for(2, retry={"attempts": 2})


# ----------------------------------------------------------------------
# FaultLog: the observability ledger
# ----------------------------------------------------------------------
class TestFaultLog:
    def test_record_and_summarize(self):
        log = FaultLog()
        assert not log and len(log) == 0
        log.record("scan", ("h", 1), "peer closed", batch=(3, 4), attempt=2)
        log.record("redispatch", "h:2", "requeued", batch=(3, 4))
        log.record("fallback", "driver", "quorum loss", batch=(4,))
        assert len(log) == 3 and bool(log)
        summary = log.summary()
        assert summary["events"] == 3
        assert summary["by_kind"] == {"scan": 1, "redispatch": 1,
                                      "fallback": 1}
        assert summary["by_worker"]["h:1"] == 1  # tuple worker normalized
        assert summary["degraded_to_local"] is True
        rows = log.as_rows()
        assert rows[0]["batch"] == [3, 4] and rows[0]["attempt"] == 2
        assert all(row["elapsed"] >= 0 for row in rows)
        log.clear()
        assert not log and log.summary()["degraded_to_local"] is False


# ----------------------------------------------------------------------
# Chaos spec parsing and the proxy's frame view of the protocol
# ----------------------------------------------------------------------
class TestChaosSpec:
    def test_every_mode_parses(self):
        for mode in CHAOS_MODES:
            assert parse_chaos_spec(mode) == {"mode": mode}

    def test_options(self):
        assert parse_chaos_spec("drop, after=3, times=1, seed=7") == {
            "mode": "drop", "after_frames": 3, "times": 1, "seed": 7,
        }
        assert parse_chaos_spec("delay,delay=0.5,prob=0.25") == {
            "mode": "delay", "delay": 0.5, "prob": 0.25,
        }

    @pytest.mark.parametrize("spec", ["", "nonsense", "drop,after",
                                      "drop,color=red", "drop,after=soon"])
    def test_bad_specs_name_the_env_knob(self, spec):
        with pytest.raises(ValueError, match=CHAOS_ENV):
            parse_chaos_spec(spec)

    def test_spec_from_env(self):
        assert chaos_spec_from_env({}) is None
        assert chaos_spec_from_env({CHAOS_ENV: "  "}) is None
        assert chaos_spec_from_env({CHAOS_ENV: "corrupt,seed=3"}) == {
            "mode": "corrupt", "seed": 3,
        }

    def test_proxy_rejects_bad_construction(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            ChaosProxy(("127.0.0.1", 1), mode="nope")
        with pytest.raises(ValueError, match="after_frames"):
            ChaosProxy(("127.0.0.1", 1), mode="drop", after_frames=-1)
        with pytest.raises(ValueError, match="prob"):
            ChaosProxy(("127.0.0.1", 1), mode="drop", prob=2.0)

    def test_frame_header_mirrors_the_transport(self):
        # chaos.py deliberately duplicates the frame header rather than
        # importing the transport it sabotages; they must never diverge.
        assert (chaos_mod._FRAME_HEADER.format
                == remote_mod._FRAME_HEADER.format)
        assert chaos_mod._FRAME_HEADER.size == remote_mod._FRAME_HEADER.size


def test_frame_checksum_detects_corruption():
    """Protocol v2's crc32 turns a flipped byte into a loud error."""
    left, right = socket.socketpair()
    try:
        payload = b"gains-vector-bytes" * 4
        header = remote_mod._FRAME_HEADER.pack(
            b"B", len(payload), zlib.crc32(payload)
        )
        frame = bytearray(header + payload)
        frame[-1] ^= 0x40  # one bit, last payload byte
        left.sendall(bytes(frame))
        with pytest.raises(ProtocolError, match="checksum mismatch"):
            remote_mod._recv_frame(right)
    finally:
        left.close()
        right.close()


# ----------------------------------------------------------------------
# The acceptance property: every chaos mode × retries → identical results
# ----------------------------------------------------------------------
def test_chaos_modes_recover_bit_identical_with_retries(
    tmp_path, worker_fleet
):
    """20 random instances × rotating encoding/planner/chaos mode.

    One worker sits behind a chaos proxy that sabotages its first
    connection (``times=1``, ``after_frames=0`` so the fault always
    fires, on the hello of the lane's eager connect); retries reconnect
    cleanly and the scan must be bit-identical to serial.  ``delay``
    corrupts nothing and must be identical without any fault at all.
    """
    rng = np.random.default_rng(211)
    shm_dir = "/dev/shm"
    before = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else set()
    for case in range(20):
        mode = CHAOS_MODES[case % len(CHAOS_MODES)]
        system = _random_system(rng)
        mask_int = (1 << system.n) - 1
        encoding = ENCODINGS_UNDER_TEST[case % 2]
        planner = PLANNER_UNDER_TEST[case % 2]
        path = write_shards(tmp_path / f"c{case}", system,
                            chunk_rows=int(rng.integers(1, 6)),
                            encoding=encoding)
        serial = ShardedSetStream(path, jobs=1)
        reference = serial.scan_gains(mask_int, min_capture_gain=1)
        serial.close()
        with ChaosProxy(worker_fleet[0], mode=mode, after_frames=0,
                        times=1, seed=case) as proxy:
            stream = ShardedSetStream(
                path, transport="remote",
                workers=[proxy.address, worker_fleet[1]],
                planner=planner, retry=FAST_RETRY,
            )
            scan = stream.scan_gains(mask_int, min_capture_gain=1)
            assert [int(g) for g in scan.gains] == [
                int(g) for g in reference.gains
            ], (case, mode, encoding, planner)
            assert scan.captured == reference.captured
            assert stream.passes == 1
            if mode != "delay":  # delay injects latency, not faults
                assert proxy.sabotaged_connections >= 1
                events = stream.fault_log.events
                assert any(
                    event.kind in ("connect", "scan", "deadline")
                    for event in events
                ), (case, mode, [event.kind for event in events])
                # The survived faults surface in the result's extra.
                assert scan.extra["fault_summary"]["events"] >= 1
                assert scan.extra["fault_summary"]["degraded_to_local"] is False
            stream.close()
    _assert_no_fault_threads()
    if os.path.isdir(shm_dir):
        leaked = {
            entry for entry in set(os.listdir(shm_dir)) - before
            if entry.startswith("psm_")
        }
        assert not leaked, leaked


def test_algorithm_parity_under_mid_stream_chaos(tmp_path, worker_fleet):
    """Full algorithms over chaos that strikes mid-result-stream.

    ``after_frames=2`` lets the handshake and the first result through
    before sabotaging, so re-dispatch must skip already-delivered shards
    — the reorder-window dedup that keeps retried runs bit-identical.
    """
    rng = np.random.default_rng(223)
    algorithms = [
        ("threshold", lambda stream: ThresholdGreedy().solve(stream)),
        ("multipass",
         lambda stream: MultiPassGreedy(max_passes=4).solve(stream)),
        (
            "iter",
            lambda stream: iter_set_cover(
                stream, delta=0.5, seed=13,
                use_polylog_factors=False, include_rho=False,
            ),
        ),
    ]
    cases = [("drop", 0), ("corrupt", 1), ("truncate", 2), ("drop", 1),
             ("corrupt", 2), ("truncate", 0)]
    for case, (mode, algo_index) in enumerate(cases):
        system = _random_system(rng)
        encoding = ENCODINGS_UNDER_TEST[case % 2]
        planner = PLANNER_UNDER_TEST[case % 2]
        path = write_shards(tmp_path / f"alg{case}", system,
                            chunk_rows=int(rng.integers(1, 6)),
                            encoding=encoding)
        algo_name, run = algorithms[algo_index]
        serial_stream = ShardedSetStream(path, jobs=1)
        reference = _fingerprint(run(serial_stream), serial_stream)
        serial_stream.close()
        with ChaosProxy(worker_fleet[0], mode=mode, after_frames=2,
                        times=1, seed=case) as proxy:
            stream = ShardedSetStream(
                path, transport="remote",
                workers=[proxy.address, worker_fleet[1]],
                planner=planner, retry=FAST_RETRY,
            )
            fingerprint = _fingerprint(run(stream), stream)
            assert fingerprint == reference, (case, mode, algo_name)
            stream.close()
    _assert_no_fault_threads()


def test_accept_scans_recover_with_retries(tmp_path, worker_fleet):
    """The worker-side accept-fusion path retries like the gains path."""
    system = SetSystem(8, [[0, 1, 2], [2, 3], [4, 5, 6, 7], [0]])
    path = write_shards(tmp_path / "acc", system, chunk_rows=2)
    serial = list(ShardedSetStream(path, jobs=1).scan_accepts_chunked(
        (1 << 8) - 1, 2
    ))
    with ChaosProxy(worker_fleet[0], mode="drop", after_frames=0,
                    times=1, seed=0) as proxy:
        stream = ShardedSetStream(
            path, transport="remote",
            workers=[proxy.address, worker_fleet[1]], retry=FAST_RETRY,
        )
        remote = list(stream.scan_accepts_chunked((1 << 8) - 1, 2))
        stream.close()
    assert len(remote) == len(serial)
    for (s_start, s_cap, s_batch), (r_start, r_cap, r_batch) in zip(
        serial, remote
    ):
        assert (r_start, r_cap) == (s_start, s_cap)
        assert (r_batch.ids, r_batch.removed, r_batch.touched) == (
            s_batch.ids, s_batch.removed, s_batch.touched,
        )


# ----------------------------------------------------------------------
# Fail-loud preserved verbatim when retries are off
# ----------------------------------------------------------------------
def test_fail_loud_contract_without_retries(tmp_path, worker_fleet):
    """attempts=1 (the default): the first fault aborts, loudly, typed."""
    system = SetSystem(32, [[i % 32, (i * 5) % 32] for i in range(24)])
    path = write_shards(tmp_path / "loud", system, chunk_rows=2)
    mask_int = (1 << 32) - 1
    with ChaosProxy(worker_fleet[0], mode="drop", after_frames=2,
                    times=None, seed=0) as proxy:
        stream = ShardedSetStream(path, transport="remote",
                                  workers=[proxy.address])
        with pytest.raises(WorkerFaultError,
                           match="remote worker .* failed mid-scan") as info:
            stream.scan_gains(mask_int)
        # No retries → the PR 5 message, with no attempt-counter suffix.
        assert "attempt" not in str(info.value)
        assert "must be rerun" in str(info.value)
        stream.close()
    _assert_no_fault_threads()


def test_corrupt_frame_without_retries_is_loud_not_wrong(
    tmp_path, worker_fleet
):
    """A flipped byte mid-stream must abort — never a wrong gains vector."""
    system = SetSystem(24, [[i % 24, (i * 7) % 24] for i in range(20)])
    path = write_shards(tmp_path / "flip", system, chunk_rows=2)
    with ChaosProxy(worker_fleet[0], mode="corrupt", after_frames=2,
                    times=None, seed=3) as proxy:
        stream = ShardedSetStream(path, transport="remote",
                                  workers=[proxy.address])
        with pytest.raises(WorkerFaultError, match="checksum mismatch"):
            stream.scan_gains((1 << 24) - 1)
        stream.close()


def test_blackhole_without_retries_times_out_instead_of_hanging(
    tmp_path, worker_fleet
):
    """The satellite-1 regression: post-handshake reads carry a timeout.

    PR 5 set ``settimeout(None)`` after the handshake, so a peer that
    wedged mid-scan hung the driver forever.  A blackhole proxy is
    exactly that peer; the idle timeout must surface it as a loud error.
    """
    system = SetSystem(16, [[i % 16] for i in range(12)])
    path = write_shards(tmp_path / "hole", system, chunk_rows=2)
    with ChaosProxy(worker_fleet[0], mode="blackhole", after_frames=1,
                    times=None, seed=0) as proxy:
        stream = ShardedSetStream(
            path, transport="remote", workers=[proxy.address],
            retry={"idle_timeout": 0.4},  # attempts=1: still fail-loud
        )
        begin = time.monotonic()
        with pytest.raises(WorkerFaultError, match="idle timeout"):
            stream.scan_gains((1 << 16) - 1)
        assert time.monotonic() - begin < 10.0  # an error, not a hang
        stream.close()


def test_batch_deadline_is_enforced(tmp_path, worker_fleet):
    system = SetSystem(16, [[i % 16] for i in range(12)])
    path = write_shards(tmp_path / "dl", system, chunk_rows=2)
    with ChaosProxy(worker_fleet[0], mode="blackhole", after_frames=1,
                    times=None, seed=0) as proxy:
        stream = ShardedSetStream(
            path, transport="remote", workers=[proxy.address],
            retry={"deadline": 0.4, "idle_timeout": 5.0},
        )
        with pytest.raises(WorkerFaultError,
                           match="deadline of 0.4s exceeded"):
            stream.scan_gains((1 << 16) - 1)
        assert any(event.kind == "deadline"
                   for event in stream.fault_log.events)
        stream.close()


# ----------------------------------------------------------------------
# Quorum loss: local fallback (or a loud refusal)
# ----------------------------------------------------------------------
def test_quorum_loss_degrades_to_local_scan(tmp_path, worker_fleet):
    rng = np.random.default_rng(229)
    system = _random_system(rng)
    mask_int = (1 << system.n) - 1
    path = write_shards(tmp_path / "quorum", system, chunk_rows=2)
    serial = ShardedSetStream(path, jobs=1)
    reference = serial.scan_gains(mask_int, min_capture_gain=1)
    serial.close()
    # Every connection through the proxy dies at the hello; with
    # eject_after=1 the lone lane ejects on its first fault and the
    # driver is left with zero workers mid-scan.
    with ChaosProxy(worker_fleet[0], mode="drop", after_frames=0,
                    times=None, seed=0) as proxy:
        stream = ShardedSetStream(
            path, transport="remote", workers=[proxy.address],
            retry=dict(FAST_RETRY, attempts=2, eject_after=1),
        )
        with pytest.warns(RuntimeWarning, match="degraded to local"):
            scan = stream.scan_gains(mask_int, min_capture_gain=1)
        assert [int(g) for g in scan.gains] == [
            int(g) for g in reference.gains
        ]
        assert scan.captured == reference.captured
        summary = stream.fault_log.summary()
        assert summary["degraded_to_local"] is True
        kinds = set(summary["by_kind"])
        assert {"connect", "eject", "fallback"} <= kinds, kinds
        assert scan.extra["fault_summary"]["degraded_to_local"] is True
        stream.close()
    _assert_no_fault_threads()


def test_quorum_loss_with_fallback_disabled_is_loud(tmp_path, worker_fleet):
    system = SetSystem(8, [[0, 1], [2, 3], [4, 5]])
    path = write_shards(tmp_path / "nofb", system, chunk_rows=1)
    with ChaosProxy(worker_fleet[0], mode="drop", after_frames=0,
                    times=None, seed=0) as proxy:
        stream = ShardedSetStream(
            path, transport="remote", workers=[proxy.address],
            retry=dict(FAST_RETRY, attempts=2, eject_after=1,
                       local_fallback=False),
        )
        with pytest.raises(WorkerFaultError,
                           match="local fallback disabled"):
            stream.scan_gains((1 << 8) - 1)
        stream.close()


# ----------------------------------------------------------------------
# Worker health: ejection, rejoin, idle pings
# ----------------------------------------------------------------------
def test_ejection_and_rejoin_ledger():
    """The executor-scoped health ledger, exercised without a network."""
    executor = RemoteScanExecutor(
        [("h", 1), ("h", 2)],
        retry={"attempts": 2, "eject_after": 2, "rejoin_backoff": 0.05},
    )
    flaky, steady = ("h", 1), ("h", 2)
    assert executor._note_failure(flaky) is False  # 1 of 2
    assert executor._note_failure(flaky) is True   # ejected
    assert executor._roster() == [steady]
    time.sleep(0.06)  # cooldown elapses → rejoin-on-backoff
    assert executor._roster() == [flaky, steady]
    rejoins = [event for event in executor.fault_log.events
               if event.kind == "rejoin"]
    assert rejoins and "backoff elapsed" in rejoins[-1].detail
    # Success resets the consecutive-fault counter.
    assert executor._note_failure(steady) is False
    executor._note_success(steady)
    assert executor._note_failure(steady) is False
    # All ejected → necessity rejoin rather than an unscannable fleet.
    executor._note_failure(flaky), executor._note_failure(flaky)
    executor._note_failure(steady), executor._note_failure(steady)
    roster = executor._roster()
    assert roster == [flaky, steady]
    assert any("rejoined early" in event.detail
               for event in executor.fault_log.events)
    executor.close()


def test_ejected_worker_sits_out_then_rejoins_across_scans(
    tmp_path, worker_fleet
):
    """Pass 1 loses the worker, pass 2 rejoins it (times=1 chaos)."""
    system = SetSystem(12, [[i % 12, (i + 3) % 12] for i in range(10)])
    mask_int = (1 << 12) - 1
    path = write_shards(tmp_path / "rejoin", system, chunk_rows=2)
    serial = ShardedSetStream(path, jobs=1)
    reference = serial.scan_gains(mask_int, min_capture_gain=1)
    serial.close()
    with ChaosProxy(worker_fleet[0], mode="drop", after_frames=0,
                    times=1, seed=0) as proxy:
        stream = ShardedSetStream(
            path, transport="remote", workers=[proxy.address],
            retry=dict(FAST_RETRY, attempts=2, eject_after=1,
                       rejoin_backoff=30.0),
        )
        # Scan 1: the only worker ejects on its first connect fault and
        # the scan degrades to local — results still correct.
        with pytest.warns(RuntimeWarning, match="degraded to local"):
            first = stream.scan_gains(mask_int, min_capture_gain=1)
        assert [int(g) for g in first.gains] == [
            int(g) for g in reference.gains
        ]
        # Scan 2: the worker is mid-cooldown but is the whole fleet, so
        # necessity rejoins it early; connection 1 is clean and the scan
        # completes remotely (exactly one fallback ever recorded).
        second = stream.scan_gains(mask_int, min_capture_gain=1)
        assert [int(g) for g in second.gains] == [
            int(g) for g in reference.gains
        ]
        summary = stream.fault_log.summary()
        assert summary["by_kind"]["fallback"] == 1
        assert any("rejoined early" in event.detail
                   for event in stream.fault_log.events)
        assert stream.passes == 2
        stream.close()


def test_idle_lane_ping_notices_a_dead_peer(worker_fleet):
    """The ping verb guards idle connections (it was dead code in PR 5).

    A lane holding an open connection with no work pings its worker
    every ``ping_interval``; a blackhole peer must surface as a recorded
    ``ping`` fault, not wedge the lane.
    """
    policy = RetryPolicy(attempts=2, ping_interval=0.05, idle_timeout=0.3,
                         connect_timeout=1.0, eject_after=1, seed=0)
    executor = RemoteScanExecutor([worker_fleet[0]], retry=policy)
    # A healthy peer pongs.
    state = remote_mod._ScanState(1, [remote_mod._Batch(0, [0])])
    state.work.get()  # park the batch so the lane idles forever
    lane = remote_mod._WorkerLane(
        executor, worker_fleet[0], state, {}, b"\x00", None, True,
    )
    lane.sock = executor._connect_worker(worker_fleet[0])
    assert lane._ping() is True
    assert not executor.fault_log
    # A blackhole peer: the ping's pong never arrives → a "ping" fault.
    with ChaosProxy(worker_fleet[0], mode="blackhole", after_frames=1,
                    times=None, seed=0) as proxy:
        sock, _ = remote_mod._connect(proxy.address, policy,
                                      display=worker_fleet[0])
        lane = remote_mod._WorkerLane(
            executor, worker_fleet[0], state, {}, b"\x00", None, True,
            sock=sock,
        )
        lane.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if any(event.kind == "ping"
                   for event in executor.fault_log.events):
                break
            time.sleep(0.02)
        state.stop.set()
        lane.join(timeout=10.0)
        assert not lane.is_alive()
    pings = [event for event in executor.fault_log.events
             if event.kind == "ping"]
    assert pings, executor.fault_log.as_rows()
    executor.close()


# ----------------------------------------------------------------------
# A real mid-batch SIGKILL: re-dispatch to the survivor
# ----------------------------------------------------------------------
def test_sigkill_mid_batch_redispatches_to_survivor(tmp_path):
    """One subprocess worker SIGKILLs itself after its first shard
    result; with retries the survivor finishes the batch and the scan is
    bit-identical to serial — the tentpole acceptance test."""
    system = SetSystem(64, [[i % 64, (i * 3) % 64] for i in range(30)])
    path = write_shards(tmp_path / "kill", system, chunk_rows=4)
    mask_int = (1 << 64) - 1
    shm_dir = "/dev/shm"
    before = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else set()
    serial = ShardedSetStream(path, jobs=1)
    reference = serial.scan_gains(mask_int, min_capture_gain=1)
    serial.close()

    crasher, crash_addr = spawn_local_worker(
        tmp_path, extra_env={remote_mod._CRASH_TEST_ENV: "1"}
    )
    survivor, live_addr = spawn_local_worker(tmp_path)
    try:
        stream = ShardedSetStream(
            path, transport="remote", workers=[crash_addr, live_addr],
            # A large attempt budget plus fast ejection: the crasher's
            # lane dies after two consecutive faults (the SIGKILL, then
            # the refused reconnect) and the survivor absorbs its work.
            retry={"attempts": 10, "backoff": 0.01, "backoff_max": 0.05,
                   "eject_after": 2, "connect_timeout": 2.0, "seed": 0},
        )
        scan = stream.scan_gains(mask_int, min_capture_gain=1)
        assert [int(g) for g in scan.gains] == [
            int(g) for g in reference.gains
        ]
        assert scan.captured == reference.captured
        assert stream.passes == 1
        summary = stream.fault_log.summary()
        assert summary["events"] >= 1
        assert summary["degraded_to_local"] is False  # survivor, not local
        stream.close()
    finally:
        for process in (crasher, survivor):
            process.terminate()
            process.wait(timeout=10)
    _assert_no_fault_threads()
    if os.path.isdir(shm_dir):
        leaked = {
            entry for entry in set(os.listdir(shm_dir)) - before
            if entry.startswith("psm_")
        }
        assert not leaked, leaked


# ----------------------------------------------------------------------
# spawn_local_worker edge cases: wedged and vanishing workers (sat. 4)
# ----------------------------------------------------------------------
def test_spawn_wedged_before_announce_is_a_named_error(tmp_path):
    """A worker that binds and serves but never prints its announce line
    must trip the spawn timeout — a named error, never a hang."""
    begin = time.monotonic()
    with pytest.raises(RuntimeError, match="did not announce within"):
        spawn_local_worker(
            tmp_path, extra_env={remote_mod._WEDGE_TEST_ENV: "1"},
            timeout=3.0,
        )
    assert time.monotonic() - begin < 30.0


def test_spawn_announce_then_exit_is_a_named_error(tmp_path):
    """A worker that announces its address and immediately exits must
    fail the post-announce connect probe with its exit status."""
    with pytest.raises(RuntimeError,
                       match="exited during startup \\(rc=0\\)"):
        spawn_local_worker(
            tmp_path, extra_env={remote_mod._EXIT_TEST_ENV: "1"},
            timeout=15.0,
        )


# ----------------------------------------------------------------------
# The REPRO_CHAOS env knob: executor-interposed proxies
# ----------------------------------------------------------------------
def test_chaos_env_knob_interposes_proxies(tmp_path, worker_fleet,
                                           monkeypatch):
    """Setting REPRO_CHAOS makes the executor wrap every worker in a
    proxy — the no-code-changes path CI's chaos-smoke job uses."""
    system = SetSystem(16, [[i % 16, (i + 5) % 16] for i in range(14)])
    mask_int = (1 << 16) - 1
    path = write_shards(tmp_path / "env", system, chunk_rows=2)
    serial = ShardedSetStream(path, jobs=1)
    reference = serial.scan_gains(mask_int, min_capture_gain=1)
    serial.close()
    monkeypatch.setenv(CHAOS_ENV, "drop,after=0,times=1,seed=5")
    stream = ShardedSetStream(
        path, transport="remote", workers=worker_fleet, retry=FAST_RETRY,
    )
    assert len(stream._scan_executor()._chaos) == len(worker_fleet)
    scan = stream.scan_gains(mask_int, min_capture_gain=1)
    assert [int(g) for g in scan.gains] == [
        int(g) for g in reference.gains
    ]
    stream.close()  # must also stop the interposed proxies
    _assert_no_fault_threads()


def test_chaos_env_knob_rejects_garbage(monkeypatch):
    monkeypatch.setenv(CHAOS_ENV, "explode")
    with pytest.raises(ValueError, match=CHAOS_ENV):
        RemoteScanExecutor([("127.0.0.1", 1)])


# ----------------------------------------------------------------------
# ping_worker: the operator's health probe
# ----------------------------------------------------------------------
def test_ping_worker_reports_health(worker_fleet):
    host, port = worker_fleet[0]
    report = remote_mod.ping_worker(f"{host}:{port}", pings=2)
    assert report["worker"] == f"{host}:{port}"
    assert report["protocol"] == remote_mod.PROTOCOL_VERSION
    assert isinstance(report["pid"], int)
    assert len(report["rtt_ms"]) == 2
    assert all(rtt >= 0 for rtt in report["rtt_ms"])

    with pytest.raises(ValueError, match="exactly one worker"):
        remote_mod.ping_worker("a:1,b:2")
    with pytest.raises(RuntimeError, match="cannot reach remote worker"):
        remote_mod.ping_worker(
            ("127.0.0.1", _dead_port()),
            policy=RetryPolicy(connect_timeout=0.5),
        )
