"""Dynamic subsystem tests: delta shards, DynamicCover, churn parity.

The headline is the randomized churn-parity property suite
(:mod:`tests.churn`): hundreds of random insert/delete/compact
interleavings, each asserting after every step that the merged read
view equals a from-scratch reference (rows, stats, cost estimates),
that compaction is byte-identical to a clean rewrite, and that the
incremental :class:`repro.dynamic.DynamicCover` stays a valid cover
within its documented factor — across the backend x encoding x
planner x jobs matrix.  Satellite coverage: delta-chain corruption
taxonomy (typed :class:`~repro.setsystem.shards.ShardFormatError`),
v1/v2/v3 no-delta open regression, the ``backfill_stats`` refusal,
the remote-transport refusal, and DynamicCover unit edges.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.dynamic import DynamicCover, dynamic_approx_factor
from repro.offline.greedy import InfeasibleInstanceError
from repro.setsystem import SetSystem
from repro.setsystem.deltas import (
    DELTA_MANIFEST_NAME,
    DeltaShardWriter,
    MergedShardView,
    apply_delta,
    compact,
    open_repository,
)
from repro.setsystem.shards import (
    MANIFEST_NAME,
    SHARD_SCHEMA,
    SHARD_SCHEMA_V1,
    SHARD_SCHEMA_V2,
    PendingDeltaError,
    ShardedRepository,
    ShardFormatError,
    write_shards,
)
from repro.streaming.sharded import ShardedSetStream
from repro.workloads.churn import ChurnScript, delete_storm, rolling_blog_watch

from churn import drive_scenario, random_scenario

# ----------------------------------------------------------------------
# Churn-parity property suite (the test tentpole)
# ----------------------------------------------------------------------
# 6 matrix cells x 17 seeds = 102 random interleavings, each checked
# step-by-step (merged rows == reference, cover valid + bounded) and at
# endgame (stats, cost estimates, byte-identical compaction, identical
# iter_set_cover solves between the chain and a from-scratch rebuild).
_MATRIX = [
    # (backend, encoding, jobs, planner)
    ("python", "auto", 1, True),
    ("python", "dense", 2, True),
    ("python", "sparse", 1, False),
    ("numpy", "auto", 2, False),
    ("numpy", "rle", 1, True),
    ("auto", "auto", 2, True),
]
_SEEDS_PER_CELL = 17


@pytest.mark.parametrize(
    "backend,encoding,jobs,planner",
    _MATRIX,
    ids=[f"{b}-{e}-jobs{j}-{'planner' if p else 'noplan'}"
         for b, e, j, p in _MATRIX],
)
def test_churn_parity_matrix(tmp_path, backend, encoding, jobs, planner):
    from repro.engine.cache import configure_cache, get_cache

    cell = _MATRIX.index((backend, encoding, jobs, planner))
    incremental = []
    # The sweep doubles as the hot-cache leak check: a deliberately
    # tight byte budget forces constant eviction across ~100 scenarios
    # of churn, and the budget must hold at every step — a stale entry
    # pinned past its generation would show up here as byte growth.
    configure_cache("2m")
    for index in range(_SEEDS_PER_CELL):
        seed = 1000 * cell + index
        scenario = random_scenario(seed)
        outcome = drive_scenario(
            scenario,
            tmp_path / f"s{seed}",
            chunk_rows=5 + (seed % 4),
            encoding=encoding,
            backend=backend,
            jobs=jobs,
            planner=planner,
            # Keep the per-cell runtime down: the full solve referee runs
            # on a third of the scenarios; rows/stats/compaction parity
            # runs on every step of every scenario.
            solve=(index % 3 == 0),
        )
        stats = outcome["stats"]
        if stats["updates"]:
            incremental.append(stats["incremental_fraction"])
        cache = get_cache().stats()
        assert cache["bytes"] <= cache["max_bytes"], cache
        assert cache["entries"] >= 0 and cache["bytes"] >= 0, cache
    configure_cache(None)  # back to the environment default
    # The acceptance bar: the maintainer absorbs >= 90% of updates
    # without a full re-solve, on aggregate across the cell's scenarios.
    assert sum(incremental) / len(incremental) >= 0.9, incremental


def test_churn_parity_survives_restarts(tmp_path):
    """Checkpoint/restore after every step preserves the churn bar.

    The maintainer is torn down and rebuilt from its durable checkpoint
    (bound to the chain token) after *each* scenario step; every
    per-step property — cover validity, the documented factor bound,
    merged-view parity — is then asserted against the restored
    instance, and the >= 90% incremental-fraction floor must hold with
    the counters carried across restarts.
    """
    incremental = []
    for index in range(8):
        seed = 7000 + index
        outcome = drive_scenario(
            random_scenario(seed),
            tmp_path / f"s{seed}",
            chunk_rows=5 + (seed % 4),
            solve=(index % 4 == 0),
            restart_every=1,
        )
        assert outcome["restarts"] == len(random_scenario(seed).steps)
        stats = outcome["stats"]
        if stats["updates"]:
            incremental.append(stats["incremental_fraction"])
    assert sum(incremental) / len(incremental) >= 0.9, incremental


def test_generated_churn_scripts_replay(tmp_path):
    """The shipped churn workloads replay through the same referee."""
    for name, script in (
        ("rolling", rolling_blog_watch(
            topics=40, blogs=80, generations=4, batch=4, seed=3)),
        ("storm", delete_storm(
            topics=40, blogs=80, generations=3, batch=5, seed=3)),
    ):
        root = write_shards(
            tmp_path / name, SetSystem(script.n, script.base), chunk_rows=16
        )
        for k, batch in enumerate(script.batches, start=1):
            apply_delta(root, batch)
            with MergedShardView(root) as view:
                assert [sorted(r) for r in view.iter_rows()] == [
                    sorted(r) for r in script.live_rows(k)
                ]
        roundtrip = ChurnScript.from_json(script.to_json())
        assert roundtrip == script


# ----------------------------------------------------------------------
# Delta-chain corruption taxonomy — every fault is a typed error
# ----------------------------------------------------------------------
@pytest.fixture
def chained(tmp_path):
    """A small repository with two delta generations."""
    system = SetSystem(8, [[0, 1], [2, 3], [4, 5], [6, 7], [0, 4], [1, 5]])
    root = write_shards(tmp_path / "repo", system, chunk_rows=2)
    apply_delta(root, [
        {"op": "insert", "elements": [2, 6]},
        {"op": "delete", "id": 4},
    ])
    apply_delta(root, [
        {"op": "insert", "elements": [3, 7]},
        {"op": "delete", "id": 6},
    ])
    return root


def test_tombstone_for_never_written_row_is_rejected(chained):
    # At write time: the writer refuses out-of-range and dead ids.
    writer = DeltaShardWriter(chained)
    try:
        with pytest.raises(ValueError, match="parent view holds"):
            writer.delete(99)
        with pytest.raises(ValueError, match="already deleted"):
            writer.delete(4)
    finally:
        writer.abort()
    # At read time: a hand-tampered manifest fails with a typed error.
    manifest_path = chained / "deltas" / "00002" / DELTA_MANIFEST_NAME
    record = json.loads(manifest_path.read_text())
    record["tombstones"] = [99]
    record["crc32"] = zlib.crc32(json.dumps(
        {k: v for k, v in sorted(record.items()) if k != "crc32"},
        sort_keys=True, separators=(",", ":"),
    ).encode()) & 0xFFFFFFFF
    manifest_path.write_text(json.dumps(record))
    with pytest.raises(ShardFormatError, match="tombstone"):
        MergedShardView(chained)


def test_generation_gap_is_rejected(chained):
    (chained / "deltas" / "00002").rename(chained / "deltas" / "00005")
    with pytest.raises(ShardFormatError, match="generation"):
        MergedShardView(chained)


def test_tampered_delta_stats_crc32_is_rejected(chained):
    gen_manifest = chained / "deltas" / "00001" / MANIFEST_NAME
    manifest = json.loads(gen_manifest.read_text())
    manifest["shards"][0]["stats"]["set_bits"] += 1
    gen_manifest.write_text(json.dumps(manifest))
    with pytest.raises(ShardFormatError, match="stats checksum"):
        MergedShardView(chained)


def test_truncated_delta_shard_is_rejected(chained):
    shard = next((chained / "deltas" / "00001").glob("shard-*.bin"))
    shard.write_bytes(shard.read_bytes()[:-1])
    with pytest.raises(ShardFormatError, match="truncated or corrupt"):
        MergedShardView(chained)


def test_tampered_chain_self_checksum_is_rejected(chained):
    manifest_path = chained / "deltas" / "00001" / DELTA_MANIFEST_NAME
    record = json.loads(manifest_path.read_text())
    record["inserts"] += 1
    manifest_path.write_text(json.dumps(record))
    with pytest.raises(ShardFormatError, match="checksum"):
        MergedShardView(chained)


def test_severed_parent_anchor_is_rejected(chained):
    # Rewriting the base manifest (even with equivalent JSON) changes its
    # bytes, severing generation 1's parent_crc32 anchor.
    manifest_path = chained / MANIFEST_NAME
    manifest_path.write_text(
        json.dumps(json.loads(manifest_path.read_text()), indent=4)
    )
    with pytest.raises(ShardFormatError, match="parent"):
        MergedShardView(chained)


def test_plain_open_refuses_pending_deltas(chained):
    with pytest.raises(PendingDeltaError, match="pending delta"):
        ShardedRepository(chained)
    # base_only is the explicit escape hatch (parent-view access).
    with ShardedRepository(chained, base_only=True) as repo:
        assert repo.m == 6 and repo.pending_deltas == 2


def test_backfill_stats_refuses_pending_deltas(chained):
    # Satellite (c): rewriting manifest.json would sever the gen-1
    # parent anchor, so backfill on a delta'd repo must be refused with
    # a named error — not silently corrupt the chain.
    with ShardedRepository(chained, base_only=True) as repo:
        with pytest.raises(PendingDeltaError, match="backfill"):
            repo.backfill_stats()
    # The merged view refuses likewise (nothing to rewrite there).
    with MergedShardView(chained) as view:
        with pytest.raises(PendingDeltaError):
            view.backfill_stats()


def test_remote_transport_refuses_merged_views(chained):
    with pytest.raises(ValueError, match="remote transport"):
        ShardedSetStream(
            chained, transport="remote", workers=[("localhost", 9)]
        )


def test_delta_writer_abort_leaves_no_trace(tmp_path):
    system = SetSystem(4, [[0, 1], [2, 3]])
    root = write_shards(tmp_path / "repo", system, chunk_rows=2)
    before = sorted(p.name for p in root.iterdir())
    writer = DeltaShardWriter(root)
    writer.append([0, 2])
    writer.abort()
    assert sorted(p.name for p in root.iterdir()) == before
    with ShardedRepository(root) as repo:  # no pending deltas left behind
        assert repo.pending_deltas == 0


# ----------------------------------------------------------------------
# No-delta regression: v1/v2/v3 repositories open exactly as before
# ----------------------------------------------------------------------
def test_no_delta_repositories_open_byte_identically(tmp_path):
    system = SetSystem(10, [[i, (i + 1) % 10] for i in range(10)])
    for schema in (SHARD_SCHEMA_V1, SHARD_SCHEMA_V2, SHARD_SCHEMA):
        # dense encoding writes the raw layout, shared by all three
        # schema generations, so the v1 downgrade below stays readable.
        root = write_shards(tmp_path / schema.replace("/", "_"), system,
                            chunk_rows=3, encoding="dense")
        if schema != SHARD_SCHEMA:
            manifest = json.loads((root / MANIFEST_NAME).read_text())
            manifest["schema"] = schema
            manifest.pop("stats_crc32")
            for meta in manifest["shards"]:
                meta.pop("stats")
                if schema == SHARD_SCHEMA_V1:
                    meta.pop("layout")
                    meta.pop("bytes")
                    meta.pop("encoding", None)
            (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        snapshot = {
            p.name: p.read_bytes() for p in root.iterdir() if p.is_file()
        }
        # open_repository must hand back a plain repository (not a merged
        # view), read the same rows, and leave every byte untouched.
        with open_repository(root, verify=True) as repo:
            assert isinstance(repo, ShardedRepository)
            assert not isinstance(repo, MergedShardView)
            assert repo.schema == schema
            assert repo.to_system() == system
        assert {
            p.name: p.read_bytes() for p in root.iterdir() if p.is_file()
        } == snapshot, f"{schema}: opening mutated the repository"


def test_compact_is_noop_on_clean_repository(tmp_path):
    system = SetSystem(6, [[0, 1, 2], [3, 4, 5], [1, 4]])
    root = write_shards(tmp_path / "repo", system, chunk_rows=2)
    snapshot = {p.name: p.read_bytes() for p in root.iterdir()}
    assert compact(root) == root
    assert {p.name: p.read_bytes() for p in root.iterdir()} == snapshot


# ----------------------------------------------------------------------
# DynamicCover unit edges
# ----------------------------------------------------------------------
def test_dynamic_cover_basic_validity():
    dyn = DynamicCover(4, [(0, [0, 1]), (1, [2, 3]), (2, [0, 2])])
    assert dyn.is_valid_cover()
    dyn.verify()
    assert dyn.cover_size <= dyn.approx_factor


def test_dynamic_cover_factor_documented():
    # 4 * (floor(log2 n) + 2): every level is within 2x of its density,
    # times the greedy H_n <= log n + 1 per level (DESIGN.md §11).
    assert dynamic_approx_factor(1) == 4 * 2
    assert dynamic_approx_factor(1024) == 4 * 12
    dyn = DynamicCover(16, [(0, range(16))])
    assert dyn.approx_factor == dynamic_approx_factor(16)


def test_dynamic_cover_infeasible_delete_is_refused():
    dyn = DynamicCover(3, [(0, [0, 1]), (1, [1, 2])])
    with pytest.raises(InfeasibleInstanceError):
        dyn.delete(0)  # element 0 has no other home
    dyn.verify()  # state unchanged and still valid
    assert sorted(dyn.rows()) == [0, 1]


def test_dynamic_cover_id_hygiene():
    dyn = DynamicCover(4, [(0, [0, 1]), (1, [2, 3])])
    with pytest.raises(ValueError, match="already live"):
        dyn.insert(1, [0])
    with pytest.raises(KeyError):
        dyn.delete(7)
    with pytest.raises(ValueError, match="non-negative"):
        dyn.insert(-1, [0])


def test_dynamic_cover_ids_stay_monotonic_after_deleting_max():
    # Regression: auto-assigned ids must never be reused after deleting
    # the highest id, or the maintainer drifts from the delta chain's
    # stable-id sequence.
    dyn = DynamicCover(4, [(0, [0, 1, 2, 3])])
    dyn.apply([{"op": "insert", "elements": [0, 1]}])   # id 1
    dyn.apply([{"op": "delete", "id": 1}])
    dyn.apply([{"op": "insert", "elements": [2, 3]}])   # must become id 2
    assert sorted(dyn.rows()) == [0, 2]


def test_dynamic_cover_full_solve_budget():
    dyn = DynamicCover(6, [(i, [i]) for i in range(6)], theta=0.5)
    solves_before = dyn.full_solves
    # Deleting singletons that are covered elsewhere is impossible here;
    # pile on inserts instead and watch the budget trigger eventually.
    for k in range(40):
        dyn.insert(6 + k, [k % 6, (k + 1) % 6])
    dyn.verify()
    stats = dyn.stats()
    assert stats["updates"] == 40
    assert dyn.full_solves >= solves_before  # budget may or may not fire
    assert dyn.is_valid_cover()


def test_merged_view_matches_delta_writer_ids(tmp_path):
    """DeltaShardWriter's returned stable ids line up with the view."""
    system = SetSystem(6, [[0, 1, 2], [3, 4, 5], [0, 3]])
    root = write_shards(tmp_path / "repo", system, chunk_rows=2)
    with DeltaShardWriter(root) as writer:
        assert writer.append([1, 4]) == 3
        writer.delete(2)
        assert writer.append([2, 5]) == 4
    with MergedShardView(root) as view:
        assert list(view.stable_ids) == [0, 1, 3, 4]
        assert [sorted(r) for r in view.iter_rows()] == [
            [0, 1, 2], [3, 4, 5], [1, 4], [2, 5],
        ]


# ----------------------------------------------------------------------
# Checkpoint remap across a compaction (ISSUE 9)
# ----------------------------------------------------------------------
def test_checkpoint_remap_survives_a_compaction(tmp_path):
    """A compaction renumbers stable ids but moves no masks; with
    ``allow_remap=True`` a checkpoint follows the fold instead of dying
    as stale — the self-healing maintenance loop depends on this."""
    from repro.dynamic import StaleCheckpointError

    system = SetSystem(8, [[0, 1], [2, 3], [4, 5], [6, 7]])
    root = write_shards(tmp_path / "repo", system, chunk_rows=2)
    apply_delta(root, [{"op": "insert", "elements": [0, 2, 3]},
                       {"op": "delete", "id": 1}])
    with open_repository(root) as repo:
        cover = DynamicCover(repo.n, zip(repo.stable_ids, repo.iter_rows()))
    path = cover.checkpoint(tmp_path / "cover.ckpt", root=root)

    compact(root, online=True)
    # The strict restore still refuses (the chain token moved)...
    with pytest.raises(StaleCheckpointError):
        DynamicCover.restore(path, root=root)
    # ...but the remapping restore verifies masks-for-masks and lands on
    # the folded id space, fully operational.
    remapped = DynamicCover.restore(path, root=root, allow_remap=True)
    remapped.verify()
    assert remapped.cover_size == cover.cover_size
    assert remapped.m == cover.m
    remapped.insert(99, [0, 7])
    remapped.delete(99)
    remapped.verify()
    # Re-checkpointing binds the folded chain: strict restores work again.
    remapped.checkpoint(path, root=root)
    DynamicCover.restore(path, root=root).verify()


def test_checkpoint_remap_refuses_a_mutated_chain(tmp_path):
    """Remap is for compaction only: if rows changed (not just moved),
    silently rebinding would corrupt the cover — refuse loudly."""
    from repro.dynamic import StaleCheckpointError

    system = SetSystem(8, [[0, 1], [2, 3], [4, 5], [6, 7]])
    root = write_shards(tmp_path / "repo", system, chunk_rows=2)
    with open_repository(root) as repo:
        cover = DynamicCover(repo.n, enumerate(repo.iter_rows()))
    path = cover.checkpoint(tmp_path / "cover.ckpt", root=root)
    apply_delta(root, [{"op": "insert", "elements": [6, 7]}])  # a mutation
    compact(root)
    with pytest.raises(StaleCheckpointError, match="mutation"):
        DynamicCover.restore(path, root=root, allow_remap=True)


def test_merged_view_warm_cache_tracks_delta_churn(tmp_path):
    """Every delta generation changes the merged view's cache token, so
    scans after each mutation match a cache-off reference exactly."""
    from repro.engine import SerialScanExecutor
    from repro.engine.cache import configure_cache, get_cache

    system = SetSystem(10, [[0, 1], [2, 3], [4, 5], [6, 7], [8, 9], [1, 8]])
    root = write_shards(tmp_path / "repo", system, chunk_rows=2)
    mask = (1 << 10) - 1
    executor = SerialScanExecutor()
    batches = [
        [{"op": "insert", "elements": [0, 9]}, {"op": "delete", "id": 2}],
        [{"op": "insert", "elements": [3, 4, 5]}, {"op": "delete", "id": 6}],
        [{"op": "delete", "id": 0}, {"op": "insert", "elements": [7]}],
    ]
    configure_cache("8m")
    try:
        with open_repository(root) as view:
            executor.scan_repository(view, mask)  # warm generation 0
        for batch in batches:
            apply_delta(root, batch)
            with open_repository(root) as view:
                churned = executor.scan_repository(view, mask)
                rescan = executor.scan_repository(view, mask)
            assert list(churned.gains) == list(rescan.gains)
            configure_cache("off")
            with open_repository(root) as view:
                reference = executor.scan_repository(view, mask)
            configure_cache("8m")
            assert list(churned.gains) == list(reference.gains)
            assert churned.captured == reference.captured
        assert get_cache().stats()["bytes"] <= get_cache().stats()["max_bytes"]
    finally:
        configure_cache(None)
