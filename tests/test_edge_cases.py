"""Edge cases and failure injection across module boundaries."""

from __future__ import annotations

import pytest

from repro.core import IterSetCover, IterSetCoverConfig, iter_set_cover
from repro.geometry import GeometricInstance, GeometricSetCover, Point, ShapeStream
from repro.setsystem import SetSystem
from repro.streaming import SetStream, StreamAccessError


class TestStreamMisuse:
    def test_algorithm_on_busy_stream_raises(self, tiny_system):
        stream = SetStream(tiny_system)
        iterator = stream.iterate()
        next(iterator)
        with pytest.raises(StreamAccessError):
            iter_set_cover(stream, delta=1.0, seed=0)
        iterator.close()

    def test_stream_usable_after_algorithm_failure(self, tiny_system):
        stream = SetStream(tiny_system)
        iterator = stream.iterate()
        next(iterator)
        iterator.close()
        # The abandoned pass counted; the stream is free again.
        result = iter_set_cover(stream, delta=1.0, seed=0)
        assert stream.verify_solution(result.selection)


class TestDegenerateInstances:
    def test_all_sets_identical(self):
        system = SetSystem(4, [[0, 1, 2, 3]] * 7)
        result = iter_set_cover(SetStream(system), delta=0.5, seed=0)
        assert result.solution_size == 1

    def test_one_element_per_set_reverse_order(self):
        system = SetSystem(6, [[5 - i] for i in range(6)])
        result = iter_set_cover(SetStream(system), delta=0.5, seed=0)
        assert result.solution_size == 6

    def test_family_larger_than_universe(self):
        system = SetSystem(3, [[i % 3] for i in range(30)])
        result = iter_set_cover(SetStream(system), delta=1.0, seed=0)
        assert result.solution_size == 3

    def test_single_set_instance(self):
        system = SetSystem(5, [list(range(5))])
        result = iter_set_cover(SetStream(system), delta=0.25, seed=0)
        assert result.solution_size == 1
        assert result.passes == 2  # first iteration covers; loop exits

    def test_empty_family_nonempty_universe(self):
        system = SetSystem(3, [])
        result = iter_set_cover(SetStream(system), delta=1.0, seed=0)
        assert not result.feasible


class TestConfigBoundaries:
    def test_delta_exactly_one(self):
        assert IterSetCoverConfig(delta=1.0).iterations == 1

    def test_delta_tiny_many_iterations(self):
        assert IterSetCoverConfig(delta=0.01).iterations == 100

    def test_sample_size_at_n_one(self):
        config = IterSetCoverConfig(delta=0.5)
        assert config.sample_size(1, 1, 1, 1.0) >= 1

    def test_sample_size_zero_universe(self):
        assert IterSetCoverConfig(delta=0.5).sample_size(0, 5, 1, 1.0) == 0


class TestGeometryEdges:
    def test_unsupported_shape_type_rejected(self):
        class Blob:
            description_words = 1

            def contains(self, p):
                return True

            x_min = 0.0
            x_max = 1.0

        instance = GeometricInstance([Point(0.5, 0.5)], [Blob()])
        with pytest.raises(TypeError):
            GeometricSetCover(seed=0).solve(ShapeStream(instance))

    def test_coincident_points(self):
        from repro.geometry import AxisRect

        points = [Point(0.5, 0.5)] * 4 + [Point(0.2, 0.2)]
        shapes = [AxisRect(0.4, 0.4, 0.6, 0.6), AxisRect(0.1, 0.1, 0.3, 0.3)]
        instance = GeometricInstance(points, shapes)
        stream = ShapeStream(instance)
        result = GeometricSetCover(seed=1).solve(stream)
        assert stream.verify_solution(result.selection)

    def test_empty_point_set(self):
        from repro.geometry import Disc

        instance = GeometricInstance([], [Disc(0, 0, 1)])
        result = GeometricSetCover(seed=0).solve(ShapeStream(instance))
        assert result.selection == []
        assert result.passes == 0

    def test_collinear_points_canonical(self):
        from repro.geometry import AxisRect, CanonicalRepresentation

        sample = {i: Point(float(i), 0.0) for i in range(10)}
        rep = CanonicalRepresentation(sample, mode="split")
        pieces, _ = rep.add_shape(AxisRect(2.5, -1, 6.5, 1))
        union = frozenset().union(*[p.content for p in pieces])
        assert union == frozenset({3, 4, 5, 6})


class TestResultInvariants:
    def test_selection_never_contains_duplicates(self, uniform_small):
        for delta in (1.0, 0.5, 0.25):
            result = iter_set_cover(SetStream(uniform_small), delta=delta, seed=3)
            assert len(result.selection) == len(set(result.selection))

    def test_guess_stats_peak_sums_to_total(self, uniform_small):
        result = iter_set_cover(SetStream(uniform_small), delta=0.5, seed=3)
        total = sum(s.peak_memory_words for s in result.guess_stats.values())
        assert total == result.peak_memory_words

    def test_report_round_trip(self, uniform_small):
        result = iter_set_cover(SetStream(uniform_small), delta=0.5, seed=3)
        row = result.report().as_row()
        assert row["passes"] == result.passes
        assert row["|sol|"] == result.solution_size
        assert row["algorithm"] == "iterSetCover"


class TestSolverInjection:
    def test_custom_solver_is_used(self, uniform_small):
        calls = []

        class CountingSolver:
            name = "counting"

            def solve(self, system):
                from repro.offline import greedy_cover

                calls.append(system.n)
                return greedy_cover(system)

            def rho(self, n):
                return 1.0

            def solve_partial(self, n, sets, targets):
                from repro.offline.base import OfflineSolver

                return OfflineSolver.solve_partial(self, n, sets, targets)

        algo = IterSetCover(
            config=IterSetCoverConfig(delta=1.0), solver=CountingSolver(), seed=0
        )
        result = algo.solve(SetStream(uniform_small))
        assert result.feasible
        assert calls  # the injected solver ran
