"""Tests for the Observation 5.9 protocol simulation."""

from __future__ import annotations

import pytest

from repro.baselines import MultiPassGreedy, StoreAllGreedy, ThresholdGreedy
from repro.communication import HandoffStream, ProtocolSimulation, simulate_players
from repro.communication.protocol import WORD_BITS
from repro.setsystem import SetSystem
from repro.workloads import planted_instance


class TestHandoffStream:
    def test_fires_at_boundaries(self, tiny_system):
        events = []
        stream = HandoffStream(tiny_system, [2, 4], lambda p, s: events.append((p, s)))
        list(stream.iterate())
        assert events == [(0, 2), (0, 4)]

    def test_fires_once_per_pass(self, tiny_system):
        events = []
        stream = HandoffStream(tiny_system, [2], lambda p, s: events.append(p))
        list(stream.iterate())
        list(stream.iterate())
        assert events == [0, 1]

    def test_boundary_validation(self, tiny_system):
        with pytest.raises(ValueError):
            HandoffStream(tiny_system, [0], lambda p, s: None)
        with pytest.raises(ValueError):
            HandoffStream(tiny_system, [tiny_system.m], lambda p, s: None)

    def test_behaves_as_set_stream(self, tiny_system):
        stream = HandoffStream(tiny_system, [2], lambda p, s: None)
        items = [r for _, r in stream.iterate()]
        assert items == list(tiny_system.sets)
        assert stream.passes == 1


class TestProtocolSimulation:
    def test_handoffs_scale_with_passes_and_players(self):
        planted = planted_instance(n=60, m=40, opt=4, seed=1)
        report = simulate_players(planted.system, players=4, algorithm=MultiPassGreedy())
        # players - 1 handoffs per pass.
        assert report["handoffs"] == 3 * report["rounds"]
        assert report["result"].feasible

    def test_bits_formula(self):
        planted = planted_instance(n=40, m=30, opt=3, seed=2)
        report = simulate_players(planted.system, players=2, algorithm=StoreAllGreedy())
        expected = report["handoffs"] * report["result"].peak_memory_words * WORD_BITS
        assert report["total_bits"] == expected

    def test_low_memory_algorithm_communicates_less(self):
        planted = planted_instance(n=80, m=60, opt=4, seed=3)
        cheap = simulate_players(planted.system, 4, ThresholdGreedy())
        expensive = simulate_players(planted.system, 4, StoreAllGreedy())
        bits_per_handoff_cheap = cheap["total_bits"] / cheap["handoffs"]
        bits_per_handoff_expensive = expensive["total_bits"] / expensive["handoffs"]
        assert bits_per_handoff_cheap < bits_per_handoff_expensive

    def test_custom_memory_probe(self):
        planted = planted_instance(n=30, m=20, opt=3, seed=4)
        sim = ProtocolSimulation(planted.system, players=2, memory_probe=lambda: 7)
        report = sim.run(MultiPassGreedy())
        assert report["total_bits"] == report["handoffs"] * 7 * WORD_BITS

    def test_player_count_validated(self):
        planted = planted_instance(n=20, m=10, opt=2, seed=5)
        with pytest.raises(ValueError):
            simulate_players(planted.system, 1, MultiPassGreedy())
        with pytest.raises(ValueError):
            simulate_players(SetSystem(3, [[0, 1, 2]]), 2, MultiPassGreedy())
