"""Subprocess entry point for the crash-injection harness (DESIGN.md §12).

``tests/test_durability.py`` builds its fixtures in the parent pytest
process with no ``REPRO_CRASHPOINT`` in the environment, then runs *one*
storage operation here with the variable set — so the injected
``os._exit`` (or ``ENOSPC``) fires inside exactly the operation under
test and never during fixture setup.  The parent asserts on the exit
status (:data:`repro.setsystem.durability.CRASHPOINT_EXIT_CODE` for a
simulated crash) and on the on-disk state left behind.

Operations (first argv token):

``create DEST SYSTEM.json CHUNK_ROWS``
    ``write_shards`` of a saved :class:`~repro.setsystem.SetSystem`.
``delta ROOT OPS.json``
    ``apply_delta`` of one churn batch.
``backfill ROOT``
    ``ShardedRepository.backfill_stats`` (manifest upgrade in place).
``compact ROOT``
    In-place intent-journaled ``compact``.
``compact-online ROOT``
    Online ``compact(online=True)`` (lock-free staging, journaled
    swing, leased reclaim).
``compact-output ROOT DEST``
    Side-output ``compact`` (source must stay untouched).
``open-hold ROOT``
    ``open_repository`` and exit without closing — leaves a lease whose
    holder pid is dead (crash-debris twin of a reader crash).
``checkpoint ROOT CKPT OPS.json``
    Restore a :class:`~repro.dynamic.DynamicCover` from ``CKPT``, apply
    the ops in memory, re-checkpoint to the same path.

Run only via ``subprocess`` from the tests; importing it is harmless.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))


def main(argv: "list[str]") -> int:
    operation, *rest = argv
    if operation == "create":
        from repro.setsystem.io import load
        from repro.setsystem.shards import write_shards

        dest, system_path, chunk_rows = rest
        write_shards(dest, load(system_path), chunk_rows=int(chunk_rows))
        return 0
    if operation == "delta":
        from repro.setsystem.deltas import apply_delta

        root, ops_path = rest
        apply_delta(root, json.loads(Path(ops_path).read_text()))
        return 0
    if operation == "backfill":
        from repro.setsystem.shards import ShardedRepository

        (root,) = rest
        with ShardedRepository(root, base_only=True) as repo:
            repo.backfill_stats()
        return 0
    if operation == "compact":
        from repro.setsystem.deltas import compact

        (root,) = rest
        compact(root)
        return 0
    if operation == "compact-online":
        from repro.setsystem.deltas import compact

        (root,) = rest
        compact(root, online=True)
        return 0
    if operation == "compact-output":
        from repro.setsystem.deltas import compact

        root, dest = rest
        compact(root, output=dest)
        return 0
    if operation == "open-hold":
        import os

        from repro.setsystem.deltas import open_repository

        (root,) = rest
        open_repository(root)
        os._exit(0)  # skip close(): the lease survives as dead-pid debris
        return 0
    if operation == "checkpoint":
        from repro.dynamic import DynamicCover

        root, ckpt, ops_path = rest
        cover = DynamicCover.restore(ckpt, root=root)
        cover.apply(json.loads(Path(ops_path).read_text()))
        cover.checkpoint(ckpt, root=root)
        return 0
    raise SystemExit(f"unknown driver operation {operation!r}")


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
