"""Bench trajectory: BENCH_history.jsonl appending, peak RSS, planner rows."""

from __future__ import annotations

import json

import pytest

from repro.bench import HISTORY_NAME, HISTORY_SCHEMA, SCHEMA, run_benchmarks
from repro.engine import shutdown_pools


@pytest.fixture(scope="module")
def smoke_payloads(tmp_path_factory):
    """Two smoke-scale runs into one directory (shared: bench is slow)."""
    out_dir = tmp_path_factory.mktemp("bench")
    report = out_dir / "BENCH_kernels.json"
    payloads = [
        run_benchmarks(scale="smoke", repeats=1, output=report, jobs=2)
        for _ in range(2)
    ]
    shutdown_pools()
    return out_dir, report, payloads


def test_report_rows_carry_peak_rss(smoke_payloads):
    _, report, payloads = smoke_payloads
    payload = payloads[-1]
    assert payload["schema"] == SCHEMA
    assert json.loads(report.read_text())["schema"] == SCHEMA
    rss = [row["peak_rss_bytes"] for row in payload["results"]]
    assert all(value is None or value > 0 for value in rss)
    assert any(value is not None for value in rss)  # POSIX CI boxes


def test_history_appends_one_line_per_run(smoke_payloads):
    out_dir, _, payloads = smoke_payloads
    lines = (out_dir / HISTORY_NAME).read_text().splitlines()
    assert len(lines) == len(payloads)
    for line in lines:
        entry = json.loads(line)
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["recorded_unix"] > 0
        assert entry["scale"] == "smoke"
        assert entry["parallel_parity"]["identical"]
        assert entry["peak_rss_bytes"]  # per-benchmark high-water marks
        assert "scan_parallel_gains" in entry["best_speedups"]
        assert entry["scan_parallel"]  # the executor sweep, absolute seconds


def test_sweep_records_planner_off_control_rows(smoke_payloads):
    _, _, payloads = smoke_payloads
    backends = {
        row["backend"]
        for row in payloads[-1]["results"]
        if row["benchmark"] == "scan_parallel_gains"
    }
    assert {"rows", "serial", "jobs=2",
            "serial planner=off", "jobs=2 planner=off"} <= backends


def test_no_history_written_without_output(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    run_benchmarks(scale="smoke", repeats=1, output=None, jobs=1)
    shutdown_pools()
    assert not (tmp_path / HISTORY_NAME).exists()
