"""Tests for set chasing, ISC, and the OR_t overlay (Definitions 5.1-5.2)."""

from __future__ import annotations

import pytest

from repro.communication import (
    IntersectionSetChasing,
    SetChasing,
    overlay_equal_pointer_chasing,
    random_equal_pointer_chasing,
    random_intersection_set_chasing,
    random_set_chasing,
)


def chain_of(n, *layers):
    return SetChasing(
        n, tuple(tuple(frozenset(image) for image in layer) for layer in layers)
    )


class TestSetChasing:
    def test_single_layer(self):
        chain = chain_of(3, [{1, 2}, {0}, {2}])
        assert chain.evaluate() == frozenset({1, 2})

    def test_union_semantics(self):
        # Layer f_2 fans out to {0, 1}; layer f_1 maps 0->{2}, 1->{0}.
        chain = chain_of(3, [{2}, {0}, {1}], [{0, 1}, {2}, {1}])
        assert chain.evaluate() == frozenset({2, 0})

    def test_empty_image_propagates(self):
        chain = chain_of(2, [set(), {0}], [{0}, {1}])
        assert chain.evaluate() == frozenset()
        assert not chain.has_nonempty_images()

    def test_domain_validated(self):
        with pytest.raises(ValueError):
            chain_of(2, [{0}])
        with pytest.raises(ValueError):
            chain_of(2, [{5}, {0}])


class TestISC:
    def test_intersection_detection(self):
        a = chain_of(3, [{0}, {1}, {2}])
        b = chain_of(3, [{0}, {2}, {1}])
        assert IntersectionSetChasing(a, b).output()  # both reach {0}

    def test_disjoint_results(self):
        a = chain_of(3, [{1}, {0}, {0}])
        b = chain_of(3, [{2}, {0}, {0}])
        assert not IntersectionSetChasing(a, b).output()

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IntersectionSetChasing(
                chain_of(2, [{0}, {1}]), chain_of(3, [{0}, {1}, {2}])
            )


class TestGenerators:
    def test_images_nonempty(self):
        chain = random_set_chasing(10, 3, max_out_degree=2, seed=0)
        assert chain.has_nonempty_images()

    def test_out_degree_bounded(self):
        chain = random_set_chasing(12, 2, max_out_degree=3, seed=1)
        for layer in chain.functions:
            for image in layer:
                assert 1 <= len(image) <= 3

    def test_deterministic(self):
        assert random_set_chasing(8, 2, seed=3) == random_set_chasing(8, 2, seed=3)

    def test_isc_both_outcomes_reachable(self):
        outputs = {
            random_intersection_set_chasing(3, 2, max_out_degree=1, seed=s).output()
            for s in range(20)
        }
        assert outputs == {True, False}

    def test_bad_out_degree(self):
        with pytest.raises(ValueError):
            random_set_chasing(5, 2, max_out_degree=0)


class TestOverlay:
    def test_single_instance_overlay_is_exact(self):
        """With t = 1 the overlay tracks the EPC instance exactly: shared
        final permutation, pinned start — ISC output == equality output."""
        for seed in range(15):
            epc = random_equal_pointer_chasing(12, 3, seed=seed)
            isc = overlay_equal_pointer_chasing([epc], seed=seed + 100)
            assert isc.output() == epc.output(), seed

    def test_or_implies_isc(self):
        """Soundness direction: any EPC equality forces an ISC intersection
        (the shared layer-1 permutation maps equal endpoints together)."""
        for seed in range(12):
            instances = [
                random_equal_pointer_chasing(16, 2, seed=seed * 10 + j)
                for j in range(2)
            ]
            isc = overlay_equal_pointer_chasing(instances, seed=seed)
            if any(inst.output() for inst in instances):
                assert isc.output(), seed

    def test_overlay_out_degree_bounded_by_t(self):
        instances = [random_equal_pointer_chasing(10, 2, seed=j) for j in range(3)]
        isc = overlay_equal_pointer_chasing(instances, seed=0)
        for chain in (isc.first, isc.second):
            for layer in chain.functions:
                for image in layer:
                    assert 1 <= len(image) <= 3

    def test_empty_overlay_rejected(self):
        with pytest.raises(ValueError):
            overlay_equal_pointer_chasing([])

    def test_mixed_sizes_rejected(self):
        with pytest.raises(ValueError):
            overlay_equal_pointer_chasing(
                [
                    random_equal_pointer_chasing(8, 2, seed=0),
                    random_equal_pointer_chasing(10, 2, seed=1),
                ]
            )

    def test_unpermuted_overlay(self):
        epc = random_equal_pointer_chasing(8, 2, seed=4)
        isc = overlay_equal_pointer_chasing([epc], seed=5, permute=False)
        assert isc.output() == epc.output()
