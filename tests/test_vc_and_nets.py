"""Tests for VC dimension and epsilon-net machinery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import (
    draw_epsilon_net,
    epsilon_net_size,
    is_epsilon_net,
    is_relative_approximation,
    is_shattered,
    net_violators,
    shatter_counts,
    vc_dimension,
    vc_dimension_upper_bound,
)
from repro.setsystem import SetSystem
from repro.workloads import uniform_random_instance


class TestShattering:
    def test_singletons_shatter_one_point(self):
        ranges = [frozenset(), frozenset({0})]
        assert is_shattered([0], ranges)

    def test_missing_trace(self):
        ranges = [frozenset({0, 1}), frozenset()]
        assert not is_shattered([0, 1], ranges)  # {0} alone never realized

    def test_full_power_set_shatters(self):
        import itertools

        ranges = [
            frozenset(s)
            for k in range(4)
            for s in itertools.combinations(range(3), k)
        ]
        assert is_shattered([0, 1, 2], ranges)


class TestVCDimension:
    def test_empty_system(self):
        assert vc_dimension(SetSystem(0, [])) == 0
        assert vc_dimension(SetSystem(3, [])) == 0

    def test_single_set(self):
        # Traces on any single element: {} (never) and {e}; a single
        # nonempty set realizes only one trace besides... both needed.
        system = SetSystem(2, [[0]])
        assert vc_dimension(system) == 0  # trace {} on {0} is not realized

    def test_two_complementary_sets(self):
        system = SetSystem(2, [[0], [1]])
        # On {0}: traces {0} (set 0) and {} (set 1): shattered -> dim >= 1.
        assert vc_dimension(system) == 1

    def test_intervals_have_dimension_two(self):
        # Ranges = all "intervals" [a, b] of a line of 5 points: VC dim 2.
        sets = [
            list(range(a, b + 1)) for a in range(5) for b in range(a, 5)
        ]
        system = SetSystem(5, sets)
        assert vc_dimension(system) == 2

    def test_cap_limits_search(self):
        sets = [
            list(range(a, b + 1)) for a in range(5) for b in range(a, 5)
        ]
        system = SetSystem(5, sets)
        assert vc_dimension(system, cap=1) == 1

    def test_log_m_remark(self):
        """The paper's remark behind Lemma 2.5: VC dim <= log2 m."""
        for seed in range(5):
            system = uniform_random_instance(10, 6, density=0.4, seed=seed)
            assert vc_dimension(system) <= vc_dimension_upper_bound(system.m)

    def test_upper_bound_formula(self):
        assert vc_dimension_upper_bound(0) == 0
        assert vc_dimension_upper_bound(1) == 0
        assert vc_dimension_upper_bound(8) == 3
        assert vc_dimension_upper_bound(9) == 3


class TestShatterCounts:
    def test_counts_bound(self):
        system = SetSystem(4, [[0, 1], [1, 2], [2, 3]])
        assert shatter_counts(system, [0, 1]) <= 4
        assert shatter_counts(system, []) == 1  # only the empty trace


class TestEpsilonNets:
    def test_size_monotone(self):
        assert epsilon_net_size(2, 0.1) > epsilon_net_size(2, 0.5)
        assert epsilon_net_size(4, 0.1) > epsilon_net_size(2, 0.1)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            epsilon_net_size(2, 0.0)
        with pytest.raises(ValueError):
            epsilon_net_size(2, 0.5, q=0.0)
        with pytest.raises(ValueError):
            epsilon_net_size(-1, 0.5)

    def test_whole_ground_set_is_a_net(self):
        ranges = [set(range(5)), {7, 8}]
        assert is_epsilon_net(range(10), ranges, range(10), eps=0.1)

    def test_violator_detection(self):
        ranges = [set(range(5))]  # density 0.5
        violators = net_violators(range(10), ranges, {7, 8}, eps=0.3)
        assert violators == [0]

    def test_net_outside_ground_rejected(self):
        with pytest.raises(ValueError):
            net_violators(range(5), [], {9}, eps=0.5)

    def test_light_ranges_may_be_missed(self):
        ranges = [{0}]  # density 0.1 < eps
        assert is_epsilon_net(range(10), ranges, {5}, eps=0.3)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_sampled_nets_usually_valid(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n, eps = 300, 0.2
        ranges = [
            set(np.flatnonzero(rng.random(n) < d).tolist())
            for d in (0.25, 0.4, 0.6)
        ]
        net = draw_epsilon_net(range(n), vc_dim=2, eps=eps, q=0.05, seed=rng, c=2.0)
        assert is_epsilon_net(range(n), ranges, net, eps)

    def test_relative_approximation_is_a_net(self):
        """A relative (p, eps)-approximation with eps < 1 hits every range of
        density >= p (its sample density is at least (1-eps) p > 0)."""
        import numpy as np

        rng = np.random.default_rng(3)
        n = 200
        ranges = [set(np.flatnonzero(rng.random(n) < d).tolist()) for d in (0.3, 0.5)]
        from repro.sampling import draw_sample

        sample = draw_sample(range(n), 80, seed=rng)
        if is_relative_approximation(range(n), ranges, sample, p=0.2, eps=0.5):
            assert is_epsilon_net(range(n), ranges, sample, eps=0.2)
