"""Cross-cutting property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import iter_set_cover
from repro.offline import exact_cover, fractional_optimum, greedy_cover
from repro.setsystem import SetSystem
from repro.streaming import SetStream
from repro.utils.mathutil import harmonic


def feasible_systems(max_n=14, max_m=10):
    def build(n, raw_sets):
        sets = [set(s) for s in raw_sets] or [set()]
        covered = set().union(*sets)
        for e in range(n):
            if e not in covered:
                sets[e % len(sets)].add(e)
        return SetSystem(n, sets)

    return st.integers(min_value=1, max_value=max_n).flatmap(
        lambda n: st.lists(
            st.sets(st.integers(min_value=0, max_value=n - 1)),
            min_size=1,
            max_size=max_m,
        ).map(lambda raw: build(n, raw))
    )


@settings(max_examples=60, deadline=None)
@given(feasible_systems())
def test_greedy_is_a_cover_and_has_no_redundant_order(system):
    cover = greedy_cover(system)
    assert system.is_cover(cover)
    # Every pick covered at least one new element at pick time.
    seen: set[int] = set()
    for set_id in cover:
        gained = system[set_id] - seen
        assert gained
        seen |= system[set_id]


@settings(max_examples=40, deadline=None)
@given(feasible_systems(max_n=10, max_m=8))
def test_greedy_within_harmonic_of_optimal(system):
    """The H_s guarantee with s the largest set size."""
    greedy_size = len(greedy_cover(system))
    optimum = len(exact_cover(system))
    bound = harmonic(max(system.max_set_size(), 1)) * optimum
    assert greedy_size <= bound + 1e-9


@settings(max_examples=40, deadline=None)
@given(feasible_systems(max_n=10, max_m=8))
def test_lp_sandwiches_optimum(system):
    value, _ = fractional_optimum(system)
    optimum = len(exact_cover(system))
    assert value <= optimum + 1e-6
    # Integrality gap of set cover is at most H_n.
    assert optimum <= value * harmonic(system.n) + 1e-6


@settings(max_examples=30, deadline=None)
@given(feasible_systems(), st.sampled_from([1.0, 0.5, 0.34]))
def test_iter_set_cover_always_covers_feasible_instances(system, delta):
    stream = SetStream(system)
    result = iter_set_cover(stream, delta=delta, seed=17)
    assert result.feasible
    assert system.is_cover(result.selection)


@settings(max_examples=30, deadline=None)
@given(feasible_systems(), st.sampled_from([1.0, 0.5]))
def test_iter_set_cover_respects_pass_budget(system, delta):
    stream = SetStream(system)
    result = iter_set_cover(stream, delta=delta, seed=23)
    assert result.passes <= 2 * math.ceil(1 / delta) + 1


@settings(max_examples=30, deadline=None)
@given(feasible_systems(max_n=10, max_m=8))
def test_exact_solution_is_minimal_under_removal(system):
    """No set of an optimal cover is redundant."""
    cover = exact_cover(system)
    for drop in range(len(cover)):
        reduced = cover[:drop] + cover[drop + 1 :]
        assert not system.is_cover(reduced)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=2, max_value=3),
    st.integers(min_value=0, max_value=10**6),
)
def test_isc_reduction_counts_property(n, p, seed):
    from repro.communication import random_intersection_set_chasing
    from repro.lowerbounds import check_element_and_set_counts, reduce_isc_to_set_cover

    isc = random_intersection_set_chasing(n=n, p=p, max_out_degree=2, seed=seed)
    reduction = reduce_isc_to_set_cover(isc)
    check_element_and_set_counts(reduction)
    assert reduction.system.is_feasible()


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_certificate_property(seed):
    """Whenever ISC = 1, the Lemma 5.6 certificate is a tight cover."""
    from repro.communication import random_intersection_set_chasing
    from repro.lowerbounds import certificate_cover, reduce_isc_to_set_cover

    isc = random_intersection_set_chasing(n=3, p=2, max_out_degree=2, seed=seed)
    reduction = reduce_isc_to_set_cover(isc)
    cert = certificate_cover(reduction)
    assert (cert is not None) == reduction.isc.output()
    if cert is not None:
        assert len(set(cert)) == reduction.baseline
        assert reduction.system.is_cover(cert)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=4, max_value=40),
    st.integers(min_value=0, max_value=10**6),
)
def test_canonical_decomposition_is_lossless(n, seed):
    """Union of canonical pieces == true projection, for random discs."""
    import numpy as np

    from repro.geometry import CanonicalRepresentation, Disc, Point

    rng = np.random.default_rng(seed)
    sample = {
        i: Point(float(x), float(y)) for i, (x, y) in enumerate(rng.random((n, 2)))
    }
    for mode in ("split", "dedupe"):
        rep = CanonicalRepresentation(sample, mode=mode)
        disc = Disc(float(rng.random()), float(rng.random()), float(rng.uniform(0.1, 0.6)))
        pieces, _ = rep.add_shape(disc)
        union = (
            frozenset().union(*[p.content for p in pieces]) if pieces else frozenset()
        )
        assert union == frozenset(
            i for i, p in sample.items() if disc.contains(p)
        )
