"""Statistical verification of the paper's probabilistic lemmas.

These tests run the randomized constructions many times with fixed seeds
and check the *events* the lemmas promise — the empirical counterpart of
each w.h.p. statement.  Thresholds are set loosely enough to be
deterministic under the fixed seeds yet tight enough to catch regressions
that break the underlying distributions.
"""

from __future__ import annotations

import numpy as np

from repro.communication.disjointness import random_family
from repro.core import IterSetCoverConfig
from repro.core.iter_set_cover import _GuessState
from repro.sampling import draw_sample
from repro.streaming import MemoryMeter
from repro.workloads import uniform_random_instance


class TestLemma23SizeTest:
    """Sets passing the Size Test are genuinely large (Lemma 2.3)."""

    def test_heavy_picks_are_large(self):
        rng = np.random.default_rng(5)
        n, m, k = 400, 120, 4
        system = uniform_random_instance(n, m, density=0.15, seed=3)
        config = IterSetCoverConfig(
            delta=0.5, use_polylog_factors=False, include_rho=False,
            sample_constant=1.0,
        )
        violations = trials = 0
        for _ in range(20):
            guess = _GuessState(k, n, MemoryMeter())
            guess.begin_iteration(config, n, m, 1.0, rng)
            heavy: list[int] = []
            for set_id, r in enumerate(system.sets):
                before = set(guess.leftover)
                guess.observe_sample_pass(set_id, r)
                if set_id in guess.solution_set and (r & before):
                    if len(r & before) * guess.k >= len(guess.sample):
                        heavy.append(set_id)
            for set_id in heavy:
                trials += 1
                # Lemma 2.3 with c = 4: true size >= |U| / (c k).
                if len(system[set_id]) < n / (4 * k):
                    violations += 1
        assert trials > 0
        assert violations / trials < 0.1

    def test_small_sets_rarely_pass(self):
        """A set far below |U|/k rarely intersects |S|/k sampled elements."""
        rng = np.random.default_rng(9)
        n, k = 1000, 5
        small_set = frozenset(range(n // (4 * k)))  # quarter of the threshold
        passes = 0
        trials = 200
        sample_size = 200
        for _ in range(trials):
            sample = draw_sample(range(n), sample_size, seed=rng)
            if len(small_set & sample) * k >= sample_size:
                passes += 1
        assert passes / trials < 0.05


class TestLemma26Reduction:
    """One iteration shrinks the uncovered set substantially when k >= OPT."""

    def test_uncovered_shrinks_by_polynomial_factor(self):
        from repro.core import IterSetCover

        from repro.streaming import SetStream
        from repro.workloads import planted_instance

        planted = planted_instance(n=400, m=200, opt=4, seed=6)
        # One iteration only (delta = 1 would sample everything; use the
        # delta=1/2 sample but cap iterations via max guesses): run delta=0.5
        # and inspect the first iteration's effect through guess stats.
        algo = IterSetCover(
            config=IterSetCoverConfig(
                delta=0.5, sample_constant=1.0,
                use_polylog_factors=False, include_rho=False,
            ),
            seed=2,
        )
        stream = SetStream(planted.system)
        result = algo.solve(stream)
        assert result.feasible
        # The winning guess needed at most the 2 iterations of delta=1/2 —
        # i.e. each iteration reduced uncovered by ~n^delta = 20x.
        stats = result.guess_stats[result.best_k]
        assert len(stats.sample_sizes) <= 2


class TestLemma33UniqueDisjoint:
    """Conditioned on a probe hitting, exactly-one-disjoint dominates for
    suitable probe sizes (the event algRecoverBit relies on)."""

    def test_exactly_one_vs_two_or_more(self):
        rng = np.random.default_rng(11)
        n, m = 40, 8
        query_size = 6  # ~ log2(m) + 3: P(disjoint) per set = 2^-6
        exactly_one = two_plus = 0
        for trial in range(400):
            family = random_family(n, m, seed=rng)
            probe = frozenset(
                int(e) for e in rng.choice(n, size=query_size, replace=False)
            )
            disjoint = sum(1 for r in family if not (r & probe))
            if disjoint == 1:
                exactly_one += 1
            elif disjoint >= 2:
                two_plus += 1
        assert exactly_one > 0
        assert exactly_one > 3 * two_plus


class TestObservation34Intersecting:
    """Random families are intersecting (no set contains another) w.h.p."""

    def test_intersecting_frequency(self):
        rng = np.random.default_rng(13)
        intersecting = 0
        trials = 100
        for _ in range(trials):
            family = random_family(24, 6, seed=rng)
            bad = any(
                a < b
                for i, a in enumerate(family)
                for j, b in enumerate(family)
                if i != j
            )
            if not bad:
                intersecting += 1
        assert intersecting / trials > 0.95

    def test_small_universe_often_fails(self):
        """The n >= c log m hypothesis matters: with a tiny universe,
        containments become common."""
        rng = np.random.default_rng(17)
        intersecting = 0
        trials = 100
        for _ in range(trials):
            family = random_family(3, 6, seed=rng)
            bad = any(
                a < b
                for i, a in enumerate(family)
                for j, b in enumerate(family)
                if i != j
            )
            if not bad:
                intersecting += 1
        assert intersecting / trials < 0.6
