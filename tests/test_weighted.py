"""Tests for weighted set cover solvers."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.offline import InfeasibleInstanceError
from repro.setsystem import SetSystem
from repro.weighted import (
    exact_weighted_cover,
    validate_weights,
    weighted_fractional_optimum,
    weighted_greedy_cover,
)
from repro.workloads import uniform_random_instance


def brute_force_weighted(system, weights):
    best = None
    for k in range(system.m + 1):
        for combo in itertools.combinations(range(system.m), k):
            if system.is_cover(combo):
                weight = sum(weights[i] for i in combo)
                if best is None or weight < best:
                    best = weight
    return best


class TestValidation:
    def test_wrong_length(self, tiny_system):
        with pytest.raises(ValueError):
            validate_weights(tiny_system, [1.0])

    def test_nonpositive_rejected(self, tiny_system):
        with pytest.raises(ValueError):
            validate_weights(tiny_system, [1, 1, 0, 1, 1])

    def test_passthrough(self, tiny_system):
        assert validate_weights(tiny_system, [1] * 5) == [1.0] * 5


class TestWeightedGreedy:
    def test_unit_weights_match_unweighted(self, tiny_system):
        from repro.offline import greedy_cover

        weighted = weighted_greedy_cover(tiny_system, [1.0] * tiny_system.m)
        assert len(weighted) == len(greedy_cover(tiny_system))

    def test_prefers_cheap_sets(self):
        # Two ways to cover {0,1}: one big expensive set, two cheap ones.
        system = SetSystem(2, [[0, 1], [0], [1]])
        cover = weighted_greedy_cover(system, [10.0, 1.0, 1.0])
        assert sorted(cover) == [1, 2]

    def test_expensive_singletons_avoided(self):
        system = SetSystem(2, [[0, 1], [0], [1]])
        cover = weighted_greedy_cover(system, [1.0, 10.0, 10.0])
        assert cover == [0]

    def test_infeasible(self, infeasible_system):
        with pytest.raises(InfeasibleInstanceError):
            weighted_greedy_cover(infeasible_system, [1.0] * infeasible_system.m)


class TestExactWeighted:
    def test_minimizes_weight_not_count(self):
        # Cheapest cover uses MORE sets: 3 cheap singletons (weight 3) vs
        # one heavy full set (weight 5).
        system = SetSystem(3, [[0, 1, 2], [0], [1], [2]])
        cover = exact_weighted_cover(system, [5.0, 1.0, 1.0, 1.0])
        assert sorted(cover) == [1, 2, 3]

    def test_unit_weights_match_exact_size(self, tiny_system):
        from repro.offline import exact_cover

        weighted = exact_weighted_cover(tiny_system, [1.0] * tiny_system.m)
        assert len(weighted) == len(exact_cover(tiny_system))

    def test_empty(self):
        assert exact_weighted_cover(SetSystem(0, []), []) == []

    def test_infeasible(self, infeasible_system):
        with pytest.raises(InfeasibleInstanceError):
            exact_weighted_cover(infeasible_system, [1.0] * infeasible_system.m)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_matches_brute_force(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        system = uniform_random_instance(7, 6, density=0.4, seed=seed)
        weights = [float(w) for w in rng.uniform(0.5, 3.0, size=system.m)]
        exact = exact_weighted_cover(system, weights)
        exact_weight = sum(weights[i] for i in exact)
        assert exact_weight == pytest.approx(
            brute_force_weighted(system, weights)
        )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_exact_never_heavier_than_greedy(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        system = uniform_random_instance(8, 6, density=0.4, seed=seed)
        weights = [float(w) for w in rng.uniform(0.5, 3.0, size=system.m)]
        exact_weight = sum(
            weights[i] for i in exact_weighted_cover(system, weights)
        )
        greedy_weight = sum(
            weights[i] for i in weighted_greedy_cover(system, weights)
        )
        assert exact_weight <= greedy_weight + 1e-9


class TestWeightedLP:
    def test_lower_bounds_integral(self, tiny_system):
        weights = [2.0, 1.0, 3.0, 1.0, 1.0]
        lp_value, x = weighted_fractional_optimum(tiny_system, weights)
        integral = sum(
            weights[i] for i in exact_weighted_cover(tiny_system, weights)
        )
        assert lp_value <= integral + 1e-6
        assert all(v >= -1e-9 for v in x)

    def test_unit_weights_match_unweighted_lp(self, tiny_system):
        from repro.offline import fractional_optimum

        unweighted, _ = fractional_optimum(tiny_system)
        weighted, _ = weighted_fractional_optimum(tiny_system, [1.0] * 5)
        assert weighted == pytest.approx(unweighted, abs=1e-6)

    def test_infeasible(self, infeasible_system):
        with pytest.raises(InfeasibleInstanceError):
            weighted_fractional_optimum(
                infeasible_system, [1.0] * infeasible_system.m
            )
