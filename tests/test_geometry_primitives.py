"""Tests for geometric primitives."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import AxisRect, Disc, FatTriangle, Point

coords = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestDisc:
    def test_contains_center(self):
        assert Disc(0, 0, 1).contains(Point(0, 0))

    def test_boundary_inclusive(self):
        assert Disc(0, 0, 1).contains(Point(1, 0))

    def test_outside(self):
        assert not Disc(0, 0, 1).contains(Point(1.1, 0))

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Disc(0, 0, -1)

    def test_x_extent(self):
        disc = Disc(2, 3, 1.5)
        assert disc.x_min == 0.5 and disc.x_max == 3.5

    @given(coords, coords, st.floats(min_value=0.01, max_value=50), coords, coords)
    def test_containment_matches_distance(self, cx, cy, r, px, py):
        disc = Disc(cx, cy, r)
        inside = math.hypot(px - cx, py - cy) <= r
        # Allow the epsilon band around the boundary.
        if abs(math.hypot(px - cx, py - cy) - r) > 1e-6:
            assert disc.contains(Point(px, py)) == inside


class TestAxisRect:
    def test_contains(self):
        rect = AxisRect(0, 0, 2, 1)
        assert rect.contains(Point(1, 0.5))
        assert rect.contains(Point(0, 0))  # corner inclusive
        assert not rect.contains(Point(3, 0.5))

    def test_corner_order_validated(self):
        with pytest.raises(ValueError):
            AxisRect(1, 0, 0, 1)

    def test_degenerate_rect_is_point(self):
        rect = AxisRect(1, 1, 1, 1)
        assert rect.contains(Point(1, 1))
        assert not rect.contains(Point(1.1, 1))


class TestFatTriangle:
    def test_contains_centroid(self):
        tri = FatTriangle(0, 0, 4, 0, 2, 3)
        assert tri.contains(Point(2, 1))

    def test_vertices_inclusive(self):
        tri = FatTriangle(0, 0, 4, 0, 2, 3)
        assert tri.contains(Point(0, 0))

    def test_outside(self):
        tri = FatTriangle(0, 0, 4, 0, 2, 3)
        assert not tri.contains(Point(-1, -1))

    def test_orientation_independent(self):
        a = FatTriangle(0, 0, 4, 0, 2, 3)
        b = FatTriangle(4, 0, 0, 0, 2, 3)  # reversed orientation
        for p in (Point(2, 1), Point(9, 9)):
            assert a.contains(p) == b.contains(p)

    def test_area(self):
        assert FatTriangle(0, 0, 4, 0, 2, 3).area() == pytest.approx(6.0)

    def test_equilateral_is_fat(self):
        h = math.sqrt(3) / 2
        tri = FatTriangle(0, 0, 1, 0, 0.5, h)
        assert tri.fatness() == pytest.approx(1 / h, rel=1e-6)
        assert tri.is_fat(1.2)

    def test_sliver_is_not_fat(self):
        sliver = FatTriangle(0, 0, 10, 0, 5, 0.01)
        assert not sliver.is_fat(10)

    def test_degenerate_fatness_infinite(self):
        flat = FatTriangle(0, 0, 1, 0, 2, 0)
        assert flat.fatness() == math.inf


class TestDescriptionWords:
    def test_constant_descriptions(self):
        assert Disc.description_words == 3
        assert AxisRect.description_words == 4
        assert FatTriangle.description_words == 6
