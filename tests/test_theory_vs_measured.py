"""Consistency between the analysis formulas and actual algorithm behaviour.

The theory module's predicted bounds are only useful if the implementations
actually track them; these tests pin the relationships at one scale each.
"""

from __future__ import annotations

import math

from repro.analysis import (
    cw16_approx,
    er14_approx,
    iter_set_cover_passes,
)
from repro.baselines import ChakrabartiWirth, EmekRosen
from repro.core import IterSetCover, IterSetCoverConfig
from repro.streaming import SetStream
from repro.workloads import planted_instance, threshold_trap_instance


class TestPassPredictions:
    def test_iter_passes_match_formula(self):
        planted = planted_instance(n=128, m=96, opt=4, seed=21)
        for delta in (1.0, 0.5, 0.25):
            stream = SetStream(planted.system)
            result = IterSetCover(
                config=IterSetCoverConfig(
                    delta=delta,
                    sample_constant=1.0,
                    use_polylog_factors=False,
                    include_rho=False,
                ),
                seed=3,
            ).solve(stream)
            predicted = iter_set_cover_passes(delta)
            assert result.passes <= math.ceil(predicted) + 1  # + cleanup


class TestApproxPredictions:
    def test_er14_within_formula_on_trap(self):
        """The trap family realizes a Theta(sqrt n) overpay; the measured
        ratio must stay below the er14_approx envelope (with slack 4 for
        the two-sided threshold constant)."""
        for n in (64, 256):
            system = threshold_trap_instance(n, seed=5)
            result = EmekRosen().solve(SetStream(system))
            ratio = result.solution_size / 2  # optimum is 2
            assert ratio <= 4 * er14_approx(n)

    def test_cw16_within_formula(self):
        planted = planted_instance(n=256, m=128, opt=4, seed=22)
        for p in (1, 2, 3):
            result = ChakrabartiWirth(passes=p).solve(SetStream(planted.system))
            bound = cw16_approx(256, p)
            assert result.solution_size <= bound * planted.opt


class TestSpacePredictions:
    def test_iter_space_tracks_delta_direction(self):
        """iter_set_cover_space is monotone in delta; so must be the
        measured per-guess peak (same instance, same seed)."""
        planted = planted_instance(n=512, m=256, opt=8, seed=23)
        peaks = []
        for delta in (1.0, 0.5, 0.25):
            stream = SetStream(planted.system)
            result = IterSetCover(
                config=IterSetCoverConfig(
                    delta=delta,
                    sample_constant=0.6,
                    use_polylog_factors=False,
                    include_rho=False,
                ),
                seed=4,
            ).solve(stream)
            peaks.append(result.guess_stats[result.best_k].peak_memory_words)
        assert peaks[0] > peaks[1] > peaks[2]
