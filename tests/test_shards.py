"""Shard repository format + ShardedSetStream: round-trips, corruption, parity."""

from __future__ import annotations

import json
import zlib

import numpy as np
import pytest

from repro.baselines import MultiPassGreedy, StoreAllGreedy, ThresholdGreedy
from repro.core import iter_set_cover
from repro.partial.streaming import PartialIterSetCover, PartialThreshold
from repro.setsystem import SetSystem
from repro.setsystem.packed import ScanMask
from repro.setsystem.shards import (
    ENCODINGS,
    MANIFEST_NAME,
    SHARD_SCHEMA,
    SHARD_SCHEMA_V1,
    SHARD_SCHEMA_V2,
    ShardedRepository,
    ShardFormatError,
    ShardWriter,
    write_shards,
)
from repro.streaming import SetStream, ShardedSetStream, StreamAccessError
from repro.workloads import planted_instance, sparse_uniform_instance


def _random_system(rng: np.random.Generator) -> SetSystem:
    n = int(rng.integers(1, 40))
    m = int(rng.integers(1, 30))
    sets = []
    for _ in range(m):
        size = int(rng.integers(0, n + 1))
        sets.append(rng.choice(n, size=size, replace=False).tolist())
    return SetSystem(n, sets)


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
def test_roundtrip_matches_in_memory_system(tmp_path):
    rng = np.random.default_rng(0)
    for case in range(30):
        system = _random_system(rng)
        path = write_shards(tmp_path / f"repo{case}", system,
                            chunk_rows=int(rng.integers(1, 9)))
        with ShardedRepository(path, verify=True) as repo:
            assert repo.n == system.n and repo.m == system.m
            assert repo.to_system() == system


def test_roundtrip_empty_family_and_empty_sets(tmp_path):
    system = SetSystem(6, [[], [0, 5], []])
    with ShardedRepository(write_shards(tmp_path / "a", system)) as repo:
        assert repo.to_system() == system

    empty = SetSystem(4, [])
    with ShardedRepository(write_shards(tmp_path / "b", empty)) as repo:
        assert repo.m == 0
        assert repo.to_system() == empty


def test_roundtrip_zero_ground_set(tmp_path):
    system = SetSystem(0, [[], []])
    with ShardedRepository(write_shards(tmp_path / "z", system)) as repo:
        assert (repo.n, repo.m, repo.words) == (0, 2, 0)
        assert repo.to_system() == system


def test_write_from_lazy_iterator(tmp_path):
    rows = ([i % 5] for i in range(12))  # a generator, never a list
    path = write_shards(tmp_path / "lazy", rows, n=5, chunk_rows=4)
    with ShardedRepository(path) as repo:
        assert repo.m == 12
        assert repo.shard_count == 3
        assert repo.to_system() == SetSystem(5, [[i % 5] for i in range(12)])


def test_writer_validates_elements_and_geometry(tmp_path):
    with pytest.raises(ValueError, match="outside the"):
        with ShardWriter(tmp_path / "w", n=3) as writer:
            writer.append([3])
    with pytest.raises(ValueError, match="non-integer"):
        with ShardWriter(tmp_path / "w1", n=3) as writer:
            writer.append([1.5])  # floats must not silently truncate
    with pytest.raises(ValueError, match="chunk_rows"):
        ShardWriter(tmp_path / "w2", n=3, chunk_rows=0)
    write_shards(tmp_path / "w3", SetSystem(2, [[0]]))
    with pytest.raises(ShardFormatError, match="refusing to overwrite"):
        ShardWriter(tmp_path / "w3", n=2)


# ----------------------------------------------------------------------
# v2 encodings: round-trips, v1 compatibility, fused scans
# ----------------------------------------------------------------------
def _mixed_system() -> SetSystem:
    """Rows that exercise every codec: runs, sparse points, dense noise.

    Ordered so that (at ``chunk_rows=2``) the first chunk is all-dense —
    written raw — while later chunks mix codecs and come out encoded.
    """
    n = 256
    rng = np.random.default_rng(5)
    sets = [
        sorted(rng.choice(n, size=200, replace=False).tolist()),  # dense
        list(range(0, 256, 2)),                                  # alternating
        list(range(40, 200)),                                    # run-length
        [0, 255],                                                # sparse
        [],                                                      # empty
        [7],                                                     # singleton
    ]
    return SetSystem(n, sets)


@pytest.mark.parametrize("encoding", ENCODINGS)
def test_v2_roundtrip_every_encoding(tmp_path, encoding):
    system = _mixed_system()
    path = write_shards(tmp_path / encoding, system, chunk_rows=2,
                        encoding=encoding)
    with ShardedRepository(path, verify=True) as repo:
        assert repo.schema == SHARD_SCHEMA
        assert repo.encoding == encoding
        assert repo.to_system() == system
        for i in range(system.m):
            assert repo.row_mask(i) == system.masks()[i]


def test_auto_encoding_mixes_layouts_and_shrinks_sparse(tmp_path):
    system = _mixed_system()
    auto = write_shards(tmp_path / "auto", system, chunk_rows=2)
    dense = write_shards(tmp_path / "dense", system, chunk_rows=2,
                         encoding="dense")
    with ShardedRepository(auto) as a, ShardedRepository(dense) as d:
        layouts = {meta["layout"] for meta in a._shard_meta}
        assert layouts == {"raw", "encoded"}  # dense rows stay raw chunks
        assert a.disk_bytes < d.disk_bytes
        assert a.to_system() == d.to_system() == system
        # The resident-buffer accounting is encoding-invariant.
        assert a.chunk_words == d.chunk_words

    sparse = sparse_uniform_instance(512, 200, expected_size=6, seed=9)
    small = write_shards(tmp_path / "s-auto", sparse)
    big = write_shards(tmp_path / "s-dense", sparse, encoding="dense")
    with ShardedRepository(small) as a, ShardedRepository(big) as d:
        assert a.disk_bytes * 2 <= d.disk_bytes  # the >=2x reduction regime


def test_v1_repository_still_opens_and_scans(tmp_path):
    """A v1 manifest (raw shards, no layout/encoding keys) reads unchanged."""
    system = _mixed_system()
    path = write_shards(tmp_path / "v1", system, chunk_rows=2,
                        encoding="dense")
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    manifest["schema"] = SHARD_SCHEMA_V1
    del manifest["encoding"]
    for meta in manifest["shards"]:
        del meta["layout"]
    (path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with ShardedRepository(path, verify=True) as repo:
        assert repo.schema == SHARD_SCHEMA_V1
        assert repo.encoding == "dense"
        assert repo.to_system() == system
        mask = ScanMask(repo.n, (1 << repo.n) - 1)
        start, gains, captured = repo.scan_shard(0, mask, min_capture_gain=1)
        assert start == 0
        assert [int(g) for g in gains] == [len(s) for s in system.sets[:2]]


def test_scan_shard_matches_bruteforce_per_encoding(tmp_path):
    system = _mixed_system()
    masks = system.masks()
    mask_int = sum(1 << e for e in range(0, system.n, 3))
    expected = [(m & mask_int).bit_count() for m in masks]
    for encoding in ENCODINGS:
        path = write_shards(tmp_path / f"scan-{encoding}", system,
                            chunk_rows=2, encoding=encoding)
        with ShardedRepository(path) as repo:
            gains, captured = [], []
            for shard in range(repo.shard_count):
                _, g, c = repo.scan_shard(
                    shard, ScanMask(repo.n, mask_int), min_capture_gain=1
                )
                gains.extend(int(x) for x in g)
                captured.extend(c)
            assert gains == expected, encoding
            assert [i for i, _ in captured] == [
                i for i, g in enumerate(expected) if g >= 1
            ]
            for row_id, projection in captured:
                assert projection == masks[row_id] & mask_int


# ----------------------------------------------------------------------
# Writer cleanup on error
# ----------------------------------------------------------------------
def test_writer_aborts_cleanly_when_source_raises(tmp_path):
    """A generator raising mid-write must leave no partial repository."""

    def exploding_rows():
        yield [0, 1]
        yield [2]
        raise RuntimeError("disk full, say")

    target = tmp_path / "partial"
    with pytest.raises(RuntimeError, match="disk full"):
        write_shards(target, exploding_rows(), n=4, chunk_rows=1)
    assert not target.exists()  # directory created by the writer: removed


def test_writer_abort_in_preexisting_directory_removes_only_its_files(tmp_path):
    target = tmp_path / "existing"
    target.mkdir()
    foreign = target / "keep.txt"
    foreign.write_text("not a shard")
    with pytest.raises(ValueError, match="outside the"):
        with ShardWriter(target, n=3, chunk_rows=1) as writer:
            writer.append([0])
            writer.append([99])  # out of range -> abort
    assert foreign.exists()
    assert not (target / MANIFEST_NAME).exists()
    assert not list(target.glob("shard-*.bin"))
    # The directory is reusable afterwards.
    write_shards(target, SetSystem(3, [[0], [1, 2]]))
    with ShardedRepository(target) as repo:
        assert repo.m == 2


def test_writer_close_after_abort_raises(tmp_path):
    writer = ShardWriter(tmp_path / "w", n=3, chunk_rows=1)
    writer.append([0])
    writer.abort()
    with pytest.raises(ShardFormatError, match="aborted"):
        writer.close()
    with pytest.raises(ShardFormatError, match="closed"):
        writer.append([1])


# ----------------------------------------------------------------------
# Corrupt compressed blocks fail loudly
# ----------------------------------------------------------------------
def _corrupt_payload_byte(path, shard_name, edit):
    """Apply ``edit`` to a shard's bytes and re-stamp the manifest CRC,
    so only the decode-time validation (not the checksum) can catch it."""
    shard = path / shard_name
    payload = bytearray(shard.read_bytes())
    edit(payload)
    shard.write_bytes(bytes(payload))
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    for meta in manifest["shards"]:
        if meta["file"] == shard_name:
            meta["crc32"] = zlib.crc32(bytes(payload))
            meta["bytes"] = len(payload)
    (path / MANIFEST_NAME).write_text(json.dumps(manifest))


def test_corrupt_sparse_block_fails_loudly(tmp_path):
    system = SetSystem(10, [[1, 5], [2]])
    path = write_shards(tmp_path / "c1", system, chunk_rows=2,
                        encoding="sparse")

    # Row 0's payload is varint(1), varint(4); overwriting the final byte
    # with a continuation byte leaves a varint unterminated at the row
    # boundary.
    def unterminate(payload):
        payload[-2] = 0x80

    _corrupt_payload_byte(path, "shard-00000.bin", unterminate)
    with ShardedRepository(path, verify=True) as repo:  # CRC matches...
        with pytest.raises(ShardFormatError, match="corrupt|varint"):
            list(repo.iter_row_masks())  # ...decode still fails loudly
        with pytest.raises(ShardFormatError, match="corrupt|varint"):
            repo.scan_shard(0, ScanMask(10, (1 << 10) - 1), min_capture_gain=1)


def test_corrupt_element_out_of_range_fails_loudly(tmp_path):
    system = SetSystem(10, [[1], [2]])
    path = write_shards(tmp_path / "c2", system, chunk_rows=2,
                        encoding="sparse")

    def oversized_element(payload):
        payload[-2] = 0x7F  # row 0 becomes [127], outside [0, 10)

    _corrupt_payload_byte(path, "shard-00000.bin", oversized_element)
    with ShardedRepository(path) as repo:
        with pytest.raises(ShardFormatError, match="outside"):
            repo.row_mask(0)
        with pytest.raises(ShardFormatError, match="corrupt"):
            repo.scan_shard(0, ScanMask(10, (1 << 10) - 1), min_capture_gain=1)


def test_corrupt_record_table_fails_loudly(tmp_path):
    system = SetSystem(64, [[1, 3], [5]])
    path = write_shards(tmp_path / "c3", system, chunk_rows=2,
                        encoding="sparse")

    def inflate_length(payload):
        payload[4 + 2] = 0xEE  # lengths[0] no longer matches the payload

    _corrupt_payload_byte(path, "shard-00000.bin", inflate_length)
    with ShardedRepository(path) as repo:
        with pytest.raises(ShardFormatError, match="corrupt"):
            list(repo.iter_row_masks())


# ----------------------------------------------------------------------
# Truncation / corruption
# ----------------------------------------------------------------------
def _write_sample(tmp_path):
    system = SetSystem(70, [[i, (i * 3) % 70] for i in range(20)])
    return write_shards(tmp_path / "repo", system, chunk_rows=6), system


def test_missing_manifest_raises(tmp_path):
    with pytest.raises(ShardFormatError, match="manifest"):
        ShardedRepository(tmp_path / "nowhere")


def test_unparseable_manifest_raises(tmp_path):
    path, _ = _write_sample(tmp_path)
    (path / MANIFEST_NAME).write_text("{not json")
    with pytest.raises(ShardFormatError, match="unparseable"):
        ShardedRepository(path)


def test_wrong_schema_raises(tmp_path):
    path, _ = _write_sample(tmp_path)
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    manifest["schema"] = "something/else"
    (path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ShardFormatError, match="schema"):
        ShardedRepository(path)


def test_inconsistent_row_total_raises(tmp_path):
    path, _ = _write_sample(tmp_path)
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    manifest["m"] = 99
    (path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ShardFormatError, match="sum to m"):
        ShardedRepository(path)


def test_missing_shard_file_raises(tmp_path):
    path, _ = _write_sample(tmp_path)
    (path / "shard-00001.bin").unlink()
    with pytest.raises(ShardFormatError, match="missing shard"):
        ShardedRepository(path)


def test_truncated_shard_raises(tmp_path):
    path, _ = _write_sample(tmp_path)
    shard = path / "shard-00000.bin"
    shard.write_bytes(shard.read_bytes()[:-8])
    with pytest.raises(ShardFormatError, match="truncated or corrupt"):
        ShardedRepository(path)


def test_closed_repository_raises_instead_of_presenting_empty(tmp_path):
    path, system = _write_sample(tmp_path)
    repo = ShardedRepository(path)
    repo.close()
    repo.close()  # idempotent
    with pytest.raises(ShardFormatError, match="closed"):
        list(repo.iter_row_masks())
    with pytest.raises(ShardFormatError, match="closed"):
        repo.row_mask(0)
    with pytest.raises(ShardFormatError, match="closed"):
        repo.validate()
    # A stream over a closed repository fails loudly too, rather than
    # running a 0-row "pass".
    stream = ShardedSetStream(repo)
    with pytest.raises(ShardFormatError, match="closed"):
        list(stream.iterate())


def test_bitflip_caught_by_checksum(tmp_path):
    path, _ = _write_sample(tmp_path)
    shard = path / "shard-00000.bin"
    payload = bytearray(shard.read_bytes())
    payload[0] ^= 0xFF
    shard.write_bytes(bytes(payload))
    # Size still matches, so plain open succeeds ...
    with ShardedRepository(path) as repo:
        with pytest.raises(ShardFormatError, match="checksum"):
            repo.validate()
    # ... but verify=True catches it on open.
    with pytest.raises(ShardFormatError, match="checksum"):
        ShardedRepository(path, verify=True)


# ----------------------------------------------------------------------
# ShardedSetStream: protocol + pass parity with SetStream
# ----------------------------------------------------------------------
def test_stream_protocol_and_access_rules(tmp_path):
    path, system = _write_sample(tmp_path)
    stream = ShardedSetStream(path)
    assert (stream.n, stream.m) == (system.n, system.m)
    assert stream.resident_words == 6 * stream.repository.words
    it = stream.iterate()
    next(it)
    with pytest.raises(StreamAccessError):
        next(stream.iterate())  # single read head
    it.close()
    assert stream.passes == 1
    stream.reset_passes()
    assert stream.passes == 0
    assert stream.verify_solution(range(system.m)) == system.is_feasible()
    assert stream.system == system
    stream.close()


def test_pass_counting_parity_on_random_instances(tmp_path):
    """100+ random instances: identical rows and pass accounting."""
    rng = np.random.default_rng(7)
    for case in range(105):
        system = _random_system(rng)
        path = write_shards(tmp_path / f"r{case}", system,
                            chunk_rows=int(rng.integers(1, 8)))
        mem, shard = SetStream(system), ShardedSetStream(path)

        assert [r for _, r in shard.iterate()] == [r for _, r in mem.iterate()]
        backend = ("python", "numpy", "frozenset")[case % 3]
        mem_rows = list(mem.iterate_packed(backend))
        shard_rows = list(shard.iterate_packed(backend))
        assert [i for i, _ in shard_rows] == [i for i, _ in mem_rows]
        if backend == "numpy":
            for (_, a), (_, b) in zip(mem_rows, shard_rows):
                assert np.array_equal(a, b)
        else:
            assert [r for _, r in shard_rows] == [r for _, r in mem_rows]

        # Abandoned passes count on both streams.
        for s in (mem, shard):
            it = s.iterate()
            next(it)
            it.close()
        assert shard.passes == mem.passes == 3
        shard.close()


def test_chunk_iteration_covers_family_and_counts_one_pass(tmp_path):
    path, system = _write_sample(tmp_path)
    stream = ShardedSetStream(path)
    starts, total = [], 0
    for start, matrix in stream.iterate_chunks("numpy"):
        starts.append(start)
        total += matrix.shape[0]
    assert total == system.m and starts[0] == 0 and stream.passes == 1

    masks = []
    for _, chunk in stream.iterate_chunks("python"):
        masks.extend(chunk)
    assert masks == system.masks()
    assert stream.passes == 2

    mem = SetStream(system)
    mem_masks = []
    for _, chunk in mem.iterate_chunks("python"):
        mem_masks.extend(chunk)
    assert mem_masks == masks and mem.passes == 1
    stream.close()


@pytest.mark.parametrize("backend", ["python", "numpy", "frozenset"])
def test_algorithm_parity_iter_set_cover(tmp_path, backend):
    planted = planted_instance(n=90, m=120, opt=5, seed=13)
    path = write_shards(tmp_path / "iter", planted.system, chunk_rows=11)
    kwargs = dict(delta=0.5, seed=3, use_polylog_factors=False,
                  include_rho=False, backend=backend)
    mem = iter_set_cover(SetStream(planted.system), **kwargs)
    stream = ShardedSetStream(path)
    shard = iter_set_cover(stream, **kwargs)
    assert shard.selection == mem.selection
    assert shard.passes == mem.passes
    assert shard.peak_memory_words == mem.peak_memory_words + stream.resident_words
    assert shard.extra["stream_buffer_words"] == stream.resident_words
    stream.close()


def test_algorithm_parity_across_solvers(tmp_path):
    system = sparse_uniform_instance(60, 90, expected_size=5, seed=21)
    path = write_shards(tmp_path / "solvers", system, chunk_rows=13)
    for make in (
        lambda: ThresholdGreedy(),
        lambda: MultiPassGreedy(),
        lambda: StoreAllGreedy(),
        lambda: PartialThreshold(eps=0.1),
        lambda: PartialIterSetCover(eps=0.1, seed=5),
    ):
        mem = make().solve(SetStream(system))
        stream = ShardedSetStream(path)
        shard = make().solve(stream)
        assert shard.selection == mem.selection
        assert shard.passes == mem.passes
        # Out-of-core peak = in-memory peak + the resident chunk buffer.
        assert shard.peak_memory_words == mem.peak_memory_words + stream.resident_words
        stream.close()


# ----------------------------------------------------------------------
# v3 manifest statistics: write-time stats, checksums, lazy backfill
# ----------------------------------------------------------------------
def _downgrade_manifest(path, schema):
    """Rewrite a repository's manifest as an older schema (test fixture)."""
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    manifest["schema"] = schema
    manifest.pop("stats_crc32", None)
    for meta in manifest["shards"]:
        meta.pop("stats", None)
    (path / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2) + "\n")
    return path


def test_v3_manifest_records_checksummed_stats(tmp_path):
    system = _mixed_system()
    path = write_shards(tmp_path / "v3", system, chunk_rows=2)
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    assert manifest["schema"] == SHARD_SCHEMA == "repro.shards/v3"
    assert isinstance(manifest["stats_crc32"], int)
    with ShardedRepository(path, verify=True) as repo:
        assert repo.has_stats
        stats = repo.shard_stats()
        assert len(stats) == repo.shard_count
        # Totals reconcile with the instance across all shards.
        assert sum(s["set_bits"] for s in stats) == system.total_size()
        assert sum(sum(s["codec_mix"].values()) for s in stats) == system.m
        assert all(sum(s["density_hist"]) == int(meta["rows"])
                   for s, meta in zip(stats, repo._shard_meta))
        costs = repo.shard_cost_estimates()
        assert len(costs) == repo.shard_count
        assert all(cost >= 1 for cost in costs)


def test_tampered_stats_fail_loudly(tmp_path):
    path = write_shards(tmp_path / "tamper", _mixed_system(), chunk_rows=2)
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    manifest["shards"][0]["stats"]["set_bits"] += 1
    (path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ShardFormatError, match="stats checksum"):
        ShardedRepository(path)
    manifest["shards"][0]["stats"] = None
    (path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ShardFormatError, match="stats"):
        ShardedRepository(path)


@pytest.mark.parametrize("schema", [SHARD_SCHEMA_V1, SHARD_SCHEMA_V2])
def test_pre_v3_repositories_open_and_backfill_idempotently(tmp_path, schema):
    system = _mixed_system()
    encoding = "dense" if schema == SHARD_SCHEMA_V1 else "auto"
    path = write_shards(tmp_path / schema.replace("/", "-"), system,
                        chunk_rows=2, encoding=encoding)
    with ShardedRepository(path) as fresh:
        expected_stats = fresh.shard_stats()
    _downgrade_manifest(path, schema)
    if schema == SHARD_SCHEMA_V1:  # v1 predates layout/encoding keys too
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest.pop("encoding")
        for meta in manifest["shards"]:
            meta.pop("layout")
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))

    # Opens unchanged, scans unchanged, costs estimated without stats.
    with ShardedRepository(path, verify=True) as repo:
        assert repo.schema == schema
        assert not repo.has_stats
        assert repo.shard_stats() == [None] * repo.shard_count
        assert all(cost >= 1 for cost in repo.shard_cost_estimates())
        assert repo.to_system() == system

        # Backfill recomputes exactly the write-time stats and upgrades.
        assert repo.backfill_stats() is True
        assert repo.schema == SHARD_SCHEMA and repo.has_stats
        assert repo.shard_stats() == expected_stats
        first = (path / MANIFEST_NAME).read_bytes()
        assert repo.backfill_stats() is False  # idempotent
        assert (path / MANIFEST_NAME).read_bytes() == first

    # The upgraded repository round-trips through a fresh open + verify.
    with ShardedRepository(path, verify=True) as upgraded:
        assert upgraded.has_stats
        assert upgraded.shard_stats() == expected_stats
        assert upgraded.to_system() == system


def test_prefetch_shard_is_a_safe_noop_everywhere(tmp_path):
    path = write_shards(tmp_path / "pf", SetSystem(4, [[0], [], [1, 2]]),
                        chunk_rows=1)
    with ShardedRepository(path) as repo:
        for shard in range(-1, repo.shard_count + 2):
            repo.prefetch_shard(shard)  # out-of-range included: no error
    repo.prefetch_shard(0)  # closed repository: still a no-op
