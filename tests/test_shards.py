"""Shard repository format + ShardedSetStream: round-trips, corruption, parity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines import MultiPassGreedy, StoreAllGreedy, ThresholdGreedy
from repro.core import iter_set_cover
from repro.partial.streaming import PartialIterSetCover, PartialThreshold
from repro.setsystem import SetSystem
from repro.setsystem.shards import (
    MANIFEST_NAME,
    SHARD_SCHEMA,
    ShardedRepository,
    ShardFormatError,
    ShardWriter,
    write_shards,
)
from repro.streaming import SetStream, ShardedSetStream, StreamAccessError
from repro.workloads import planted_instance, sparse_uniform_instance


def _random_system(rng: np.random.Generator) -> SetSystem:
    n = int(rng.integers(1, 40))
    m = int(rng.integers(1, 30))
    sets = []
    for _ in range(m):
        size = int(rng.integers(0, n + 1))
        sets.append(rng.choice(n, size=size, replace=False).tolist())
    return SetSystem(n, sets)


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
def test_roundtrip_matches_in_memory_system(tmp_path):
    rng = np.random.default_rng(0)
    for case in range(30):
        system = _random_system(rng)
        path = write_shards(tmp_path / f"repo{case}", system,
                            chunk_rows=int(rng.integers(1, 9)))
        with ShardedRepository(path, verify=True) as repo:
            assert repo.n == system.n and repo.m == system.m
            assert repo.to_system() == system


def test_roundtrip_empty_family_and_empty_sets(tmp_path):
    system = SetSystem(6, [[], [0, 5], []])
    with ShardedRepository(write_shards(tmp_path / "a", system)) as repo:
        assert repo.to_system() == system

    empty = SetSystem(4, [])
    with ShardedRepository(write_shards(tmp_path / "b", empty)) as repo:
        assert repo.m == 0
        assert repo.to_system() == empty


def test_roundtrip_zero_ground_set(tmp_path):
    system = SetSystem(0, [[], []])
    with ShardedRepository(write_shards(tmp_path / "z", system)) as repo:
        assert (repo.n, repo.m, repo.words) == (0, 2, 0)
        assert repo.to_system() == system


def test_write_from_lazy_iterator(tmp_path):
    rows = ([i % 5] for i in range(12))  # a generator, never a list
    path = write_shards(tmp_path / "lazy", rows, n=5, chunk_rows=4)
    with ShardedRepository(path) as repo:
        assert repo.m == 12
        assert repo.shard_count == 3
        assert repo.to_system() == SetSystem(5, [[i % 5] for i in range(12)])


def test_writer_validates_elements_and_geometry(tmp_path):
    with pytest.raises(ValueError, match="outside the"):
        with ShardWriter(tmp_path / "w", n=3) as writer:
            writer.append([3])
    with pytest.raises(ValueError, match="non-integer"):
        with ShardWriter(tmp_path / "w1", n=3) as writer:
            writer.append([1.5])  # floats must not silently truncate
    with pytest.raises(ValueError, match="chunk_rows"):
        ShardWriter(tmp_path / "w2", n=3, chunk_rows=0)
    write_shards(tmp_path / "w3", SetSystem(2, [[0]]))
    with pytest.raises(ShardFormatError, match="refusing to overwrite"):
        ShardWriter(tmp_path / "w3", n=2)


# ----------------------------------------------------------------------
# Truncation / corruption
# ----------------------------------------------------------------------
def _write_sample(tmp_path):
    system = SetSystem(70, [[i, (i * 3) % 70] for i in range(20)])
    return write_shards(tmp_path / "repo", system, chunk_rows=6), system


def test_missing_manifest_raises(tmp_path):
    with pytest.raises(ShardFormatError, match="manifest"):
        ShardedRepository(tmp_path / "nowhere")


def test_unparseable_manifest_raises(tmp_path):
    path, _ = _write_sample(tmp_path)
    (path / MANIFEST_NAME).write_text("{not json")
    with pytest.raises(ShardFormatError, match="unparseable"):
        ShardedRepository(path)


def test_wrong_schema_raises(tmp_path):
    path, _ = _write_sample(tmp_path)
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    manifest["schema"] = "something/else"
    (path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ShardFormatError, match="schema"):
        ShardedRepository(path)


def test_inconsistent_row_total_raises(tmp_path):
    path, _ = _write_sample(tmp_path)
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    manifest["m"] = 99
    (path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ShardFormatError, match="sum to m"):
        ShardedRepository(path)


def test_missing_shard_file_raises(tmp_path):
    path, _ = _write_sample(tmp_path)
    (path / "shard-00001.bin").unlink()
    with pytest.raises(ShardFormatError, match="missing shard"):
        ShardedRepository(path)


def test_truncated_shard_raises(tmp_path):
    path, _ = _write_sample(tmp_path)
    shard = path / "shard-00000.bin"
    shard.write_bytes(shard.read_bytes()[:-8])
    with pytest.raises(ShardFormatError, match="truncated or corrupt"):
        ShardedRepository(path)


def test_closed_repository_raises_instead_of_presenting_empty(tmp_path):
    path, system = _write_sample(tmp_path)
    repo = ShardedRepository(path)
    repo.close()
    repo.close()  # idempotent
    with pytest.raises(ShardFormatError, match="closed"):
        list(repo.iter_row_masks())
    with pytest.raises(ShardFormatError, match="closed"):
        repo.row_mask(0)
    with pytest.raises(ShardFormatError, match="closed"):
        repo.validate()
    # A stream over a closed repository fails loudly too, rather than
    # running a 0-row "pass".
    stream = ShardedSetStream(repo)
    with pytest.raises(ShardFormatError, match="closed"):
        list(stream.iterate())


def test_bitflip_caught_by_checksum(tmp_path):
    path, _ = _write_sample(tmp_path)
    shard = path / "shard-00000.bin"
    payload = bytearray(shard.read_bytes())
    payload[0] ^= 0xFF
    shard.write_bytes(bytes(payload))
    # Size still matches, so plain open succeeds ...
    with ShardedRepository(path) as repo:
        with pytest.raises(ShardFormatError, match="checksum"):
            repo.validate()
    # ... but verify=True catches it on open.
    with pytest.raises(ShardFormatError, match="checksum"):
        ShardedRepository(path, verify=True)


# ----------------------------------------------------------------------
# ShardedSetStream: protocol + pass parity with SetStream
# ----------------------------------------------------------------------
def test_stream_protocol_and_access_rules(tmp_path):
    path, system = _write_sample(tmp_path)
    stream = ShardedSetStream(path)
    assert (stream.n, stream.m) == (system.n, system.m)
    assert stream.resident_words == 6 * stream.repository.words
    it = stream.iterate()
    next(it)
    with pytest.raises(StreamAccessError):
        next(stream.iterate())  # single read head
    it.close()
    assert stream.passes == 1
    stream.reset_passes()
    assert stream.passes == 0
    assert stream.verify_solution(range(system.m)) == system.is_feasible()
    assert stream.system == system
    stream.close()


def test_pass_counting_parity_on_random_instances(tmp_path):
    """100+ random instances: identical rows and pass accounting."""
    rng = np.random.default_rng(7)
    for case in range(105):
        system = _random_system(rng)
        path = write_shards(tmp_path / f"r{case}", system,
                            chunk_rows=int(rng.integers(1, 8)))
        mem, shard = SetStream(system), ShardedSetStream(path)

        assert [r for _, r in shard.iterate()] == [r for _, r in mem.iterate()]
        backend = ("python", "numpy", "frozenset")[case % 3]
        mem_rows = list(mem.iterate_packed(backend))
        shard_rows = list(shard.iterate_packed(backend))
        assert [i for i, _ in shard_rows] == [i for i, _ in mem_rows]
        if backend == "numpy":
            for (_, a), (_, b) in zip(mem_rows, shard_rows):
                assert np.array_equal(a, b)
        else:
            assert [r for _, r in shard_rows] == [r for _, r in mem_rows]

        # Abandoned passes count on both streams.
        for s in (mem, shard):
            it = s.iterate()
            next(it)
            it.close()
        assert shard.passes == mem.passes == 3
        shard.close()


def test_chunk_iteration_covers_family_and_counts_one_pass(tmp_path):
    path, system = _write_sample(tmp_path)
    stream = ShardedSetStream(path)
    starts, total = [], 0
    for start, matrix in stream.iterate_chunks("numpy"):
        starts.append(start)
        total += matrix.shape[0]
    assert total == system.m and starts[0] == 0 and stream.passes == 1

    masks = []
    for _, chunk in stream.iterate_chunks("python"):
        masks.extend(chunk)
    assert masks == system.masks()
    assert stream.passes == 2

    mem = SetStream(system)
    mem_masks = []
    for _, chunk in mem.iterate_chunks("python"):
        mem_masks.extend(chunk)
    assert mem_masks == masks and mem.passes == 1
    stream.close()


@pytest.mark.parametrize("backend", ["python", "numpy", "frozenset"])
def test_algorithm_parity_iter_set_cover(tmp_path, backend):
    planted = planted_instance(n=90, m=120, opt=5, seed=13)
    path = write_shards(tmp_path / "iter", planted.system, chunk_rows=11)
    kwargs = dict(delta=0.5, seed=3, use_polylog_factors=False,
                  include_rho=False, backend=backend)
    mem = iter_set_cover(SetStream(planted.system), **kwargs)
    stream = ShardedSetStream(path)
    shard = iter_set_cover(stream, **kwargs)
    assert shard.selection == mem.selection
    assert shard.passes == mem.passes
    assert shard.peak_memory_words == mem.peak_memory_words + stream.resident_words
    assert shard.extra["stream_buffer_words"] == stream.resident_words
    stream.close()


def test_algorithm_parity_across_solvers(tmp_path):
    system = sparse_uniform_instance(60, 90, expected_size=5, seed=21)
    path = write_shards(tmp_path / "solvers", system, chunk_rows=13)
    for make in (
        lambda: ThresholdGreedy(),
        lambda: MultiPassGreedy(),
        lambda: StoreAllGreedy(),
        lambda: PartialThreshold(eps=0.1),
        lambda: PartialIterSetCover(eps=0.1, seed=5),
    ):
        mem = make().solve(SetStream(system))
        stream = ShardedSetStream(path)
        shard = make().solve(stream)
        assert shard.selection == mem.selection
        assert shard.passes == mem.passes
        # Out-of-core peak = in-memory peak + the resident chunk buffer.
        assert shard.peak_memory_words == mem.peak_memory_words + stream.resident_words
        stream.close()
