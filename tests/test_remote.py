"""The remote transport backend: parity, wire protocol, crash hygiene.

The contract under test (DESIGN.md §9): a two-worker localhost fleet
produces **bit-identical** covers, pass counts, captures and accounting
to the serial executor, at every encoding and planner setting — and a
worker that dies mid-batch surfaces as a loud ``RuntimeError`` with no
SharedMemory leak and no partial state (the remote twin of the
``REPRO_TEST_CRASH_SCAN`` regression test).

In-process :class:`~repro.engine.transport.remote.WorkerServer` threads
back the parity sweeps (cheap, no subprocess spawn); the crash tests use
real ``python -m repro worker serve`` subprocesses via
:func:`~repro.engine.transport.remote.spawn_local_worker`, because the
worker SIGKILLs itself mid-scan.
"""

from __future__ import annotations

import os
import socket

import numpy as np
import pytest

from repro.baselines import MultiPassGreedy, ThresholdGreedy
from repro.core import iter_set_cover
from repro.engine import (
    RemoteScanExecutor,
    WorkerServer,
    executor_for,
    resolve_workers,
    shutdown_pools,
)
from repro.engine.transport import remote as remote_mod
from repro.engine.transport.remote import (
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    manifest_token,
    recv_json,
    send_json,
    spawn_local_worker,
)
from repro.setsystem import SetSystem
from repro.setsystem.shards import write_shards
from repro.streaming import SetStream, ShardedSetStream

ENCODINGS_UNDER_TEST = ("dense", "auto")
PLANNER_UNDER_TEST = (True, False)


@pytest.fixture(scope="module", autouse=True)
def _reap_pools():
    yield
    shutdown_pools()


@pytest.fixture(scope="module")
def worker_fleet(tmp_path_factory):
    """Two in-process workers serving the whole pytest tmp tree."""
    root = tmp_path_factory.getbasetemp()
    servers = [WorkerServer(root).start(), WorkerServer(root).start()]
    yield [server.address for server in servers]
    for server in servers:
        server.stop()


def _random_system(rng: np.random.Generator) -> SetSystem:
    n = int(rng.integers(1, 50))
    m = int(rng.integers(1, 30))
    sets = []
    for _ in range(m):
        size = int(rng.integers(0, n + 1))
        sets.append(rng.choice(n, size=size, replace=False).tolist())
    return SetSystem(n, sets)


def _fingerprint(result, stream):
    return (
        result.selection,
        result.passes,
        result.feasible,
        result.peak_memory_words,
        stream.resident_words,
    )


# ----------------------------------------------------------------------
# Knob resolution and executor construction
# ----------------------------------------------------------------------
def test_resolve_workers_validation():
    assert resolve_workers("a:1,b:2") == [("a", 1), ("b", 2)]
    assert resolve_workers(" a:1 , b:2 ") == [("a", 1), ("b", 2)]
    assert resolve_workers(["a:1", ("b", 2)]) == [("a", 1), ("b", 2)]
    for bad in (None, "", "a", ":80", "a:", "a:0", "a:-1", "a:65536",
                "a:http", "a:1,,b:2", [("a",)], [("a", "x")]):
        # The message names the CLI flag that feeds this knob.
        with pytest.raises(ValueError, match="--workers"):
            resolve_workers(bad)


def test_executor_for_builds_remote():
    executor = executor_for(workers="h:1,h:2")
    assert isinstance(executor, RemoteScanExecutor)
    assert executor.transport == "remote"
    assert executor.jobs == 2  # one lane per worker
    assert executor_for(workers="h:1", planner=False).planner is False
    assert isinstance(
        executor_for(transport="remote", workers=[("h", 1)]),
        RemoteScanExecutor,
    )
    with pytest.raises(ValueError, match="workers"):
        executor_for(transport="remote")
    with pytest.raises(ValueError, match="--workers"):
        executor_for(workers="nonsense")
    # Workers must never be silently dropped for a local family.
    for transport in ("local", "serial", "thread", "process"):
        with pytest.raises(ValueError, match="transport='remote'"):
            executor_for(2, transport=transport, workers="h:1")
    # ... and an explicit jobs count must never be silently dropped for
    # the remote family (parallelism there is one lane per worker).
    with pytest.raises(ValueError, match="one lane per"):
        executor_for(8, workers="h:1,h:2")
    assert executor_for("auto", workers="h:1,h:2").jobs == 2


def test_remote_refuses_in_memory_chunk_scans(worker_fleet):
    system = SetSystem(8, [[0, 1], [2]])
    stream = SetStream(system, transport="remote", workers=worker_fleet)
    with pytest.raises(RuntimeError, match="shard repositories only"):
        list(stream.scan_gains_chunked((1 << 8) - 1))


# ----------------------------------------------------------------------
# Scan- and algorithm-level parity: the acceptance property test
# ----------------------------------------------------------------------
def test_remote_scan_gains_match_serial(tmp_path, worker_fleet):
    rng = np.random.default_rng(101)
    for case in range(15):
        system = _random_system(rng)
        mask_int = sum(1 << e for e in range(0, system.n, 2)) | 1
        for encoding in ENCODINGS_UNDER_TEST:
            path = write_shards(tmp_path / f"g{case}-{encoding}", system,
                                chunk_rows=int(rng.integers(1, 6)),
                                encoding=encoding)
            serial = ShardedSetStream(path, jobs=1)
            reference = serial.scan_gains(mask_int, min_capture_gain=1)
            serial.close()
            for planner in PLANNER_UNDER_TEST:
                stream = ShardedSetStream(
                    path, transport="remote", workers=worker_fleet,
                    planner=planner,
                )
                scan = stream.scan_gains(mask_int, min_capture_gain=1)
                assert [int(g) for g in scan.gains] == [
                    int(g) for g in reference.gains
                ], (case, encoding, planner)
                assert scan.captured == reference.captured
                assert stream.passes == 1
                stream.close()


def test_remote_algorithm_parity_on_random_instances(tmp_path, worker_fleet):
    """Covers/passes/accounting: remote == serial, the §9 guarantee."""
    rng = np.random.default_rng(103)
    algorithms = [
        ("threshold", lambda stream: ThresholdGreedy().solve(stream)),
        ("multipass", lambda stream: MultiPassGreedy(max_passes=4).solve(stream)),
        (
            "iter",
            lambda stream: iter_set_cover(
                stream, delta=0.5, seed=13,
                use_polylog_factors=False, include_rho=False,
            ),
        ),
    ]
    for case in range(20):
        system = _random_system(rng)
        chunk_rows = int(rng.integers(1, 6))
        encoding = ENCODINGS_UNDER_TEST[case % 2]
        path = write_shards(tmp_path / f"a{case}", system,
                            chunk_rows=chunk_rows, encoding=encoding)
        algo_name, run = algorithms[case % len(algorithms)]
        serial_stream = ShardedSetStream(path, jobs=1)
        reference = _fingerprint(run(serial_stream), serial_stream)
        serial_stream.close()
        planner = PLANNER_UNDER_TEST[case % 2]
        stream = ShardedSetStream(path, transport="remote",
                                  workers=worker_fleet, planner=planner)
        fingerprint = _fingerprint(run(stream), stream)
        assert fingerprint == reference, (case, algo_name, encoding, planner)
        stream.close()


def test_remote_accepts_fuse_worker_side(tmp_path, worker_fleet):
    """scan_accepts_chunked ships the simulation to remote workers."""
    system = SetSystem(8, [[0, 1, 2], [2, 3], [4, 5, 6, 7], [0]])
    path = write_shards(tmp_path / "acc", system, chunk_rows=2)
    serial = list(ShardedSetStream(path, jobs=1).scan_accepts_chunked(
        (1 << 8) - 1, 2
    ))
    remote = list(
        ShardedSetStream(path, transport="remote", workers=worker_fleet)
        .scan_accepts_chunked((1 << 8) - 1, 2)
    )
    assert len(remote) == len(serial) == 2
    for (s_start, s_cap, s_batch), (r_start, r_cap, r_batch) in zip(
        serial, remote
    ):
        assert (r_start, r_cap) == (s_start, s_cap)
        assert (r_batch.ids, r_batch.removed, r_batch.touched) == (
            s_batch.ids, s_batch.removed, s_batch.touched,
        )


def test_remote_single_worker_and_abandoned_scan(tmp_path, worker_fleet):
    """One worker serves everything; an abandoned pass leaves no wreckage."""
    system = SetSystem(16, [[i % 16] for i in range(20)])
    path = write_shards(tmp_path / "one", system, chunk_rows=2)
    stream = ShardedSetStream(path, transport="remote",
                              workers=worker_fleet[:1])
    parts = stream.scan_gains_chunked((1 << 16) - 1)
    next(parts)
    parts.close()  # abandon mid-pass
    assert stream.passes == 1
    full = stream.scan_gains((1 << 16) - 1)
    assert len(full.gains) == 20
    stream.close()


# ----------------------------------------------------------------------
# Wire-protocol failure modes
# ----------------------------------------------------------------------
def test_manifest_token_mismatch_is_refused(tmp_path, worker_fleet):
    """A worker never scans a repository whose manifest content differs
    from what the driver's token promises (a stale or divergent mount)."""
    system = SetSystem(8, [[0, 1], [2, 3]])
    path = write_shards(tmp_path / "tok", system)
    stale = manifest_token(path)
    stale = [stale[0] + 1, stale[1] ^ 0xDEAD]  # a token from "elsewhere"
    host, port = worker_fleet[0]
    with socket.create_connection((host, port), timeout=10.0) as sock:
        send_json(sock, {"op": "hello", "protocol": PROTOCOL_VERSION})
        assert recv_json(sock)["op"] == "hello"
        send_json(sock, {
            "op": "scan", "path": str(path), "token": stale, "n": 8,
            "shards": [0], "min_capture_gain": None, "capture_ids": None,
            "best_only": False, "include_gains": True,
            "accept_threshold": None,
        })
        from repro.engine.transport.remote import send_bytes

        send_bytes(sock, (255).to_bytes(1, "little"))  # the mask frame
        reply = recv_json(sock)
        assert reply["op"] == "error"
        assert "token mismatch" in reply["message"]
    # The full driver path reports the same failure loudly.
    stream = ShardedSetStream(path, transport="remote", workers=worker_fleet)
    real = stream.scan_gains((1 << 8) - 1)  # sanity: matching token works
    assert len(real.gains) == 2
    stream.close()


def test_paths_outside_worker_root_are_rejected(tmp_path):
    system = SetSystem(8, [[0, 1], [2, 3]])
    inside = tmp_path / "root"
    inside.mkdir()
    outside = write_shards(tmp_path / "outside", system)
    with WorkerServer(inside) as server:
        server.start()
        stream = ShardedSetStream(outside, transport="remote",
                                  workers=[server.address])
        with pytest.raises(RuntimeError, match="outside the serving root"):
            stream.scan_gains((1 << 8) - 1)
        stream.close()


def test_protocol_version_mismatch_is_loud(worker_fleet):
    host, port = worker_fleet[0]
    # A driver older than the worker's floor is refused loudly.
    with socket.create_connection((host, port), timeout=10.0) as sock:
        send_json(sock, {"op": "hello", "protocol": MIN_PROTOCOL_VERSION - 1})
        reply = recv_json(sock)
        assert reply["op"] == "error"
        assert "protocol mismatch" in reply["message"]


def test_protocol_version_negotiates_down(worker_fleet):
    host, port = worker_fleet[0]
    # A *newer* driver is not refused: the worker echoes the newest
    # version it speaks and both sides proceed at that version.
    with socket.create_connection((host, port), timeout=10.0) as sock:
        send_json(sock, {"op": "hello", "protocol": PROTOCOL_VERSION + 1})
        reply = recv_json(sock)
        assert reply["op"] == "hello"
        assert reply["protocol"] == PROTOCOL_VERSION
    # An old-protocol driver gets old-protocol replies: no hot/cache
    # fields ride the wire at the negotiated floor version.
    with socket.create_connection((host, port), timeout=10.0) as sock:
        send_json(sock, {"op": "hello", "protocol": MIN_PROTOCOL_VERSION})
        reply = recv_json(sock)
        assert reply["op"] == "hello"
        assert reply["protocol"] == MIN_PROTOCOL_VERSION
        send_json(sock, {"op": "ping"})
        pong = recv_json(sock)
        assert pong["op"] == "pong"
        assert "cache" not in pong


def test_ping_pong(worker_fleet):
    host, port = worker_fleet[0]
    with socket.create_connection((host, port), timeout=10.0) as sock:
        send_json(sock, {"op": "hello", "protocol": PROTOCOL_VERSION})
        assert recv_json(sock)["op"] == "hello"
        send_json(sock, {"op": "ping"})
        assert recv_json(sock)["op"] == "pong"


def test_unreachable_worker_fails_before_any_request(tmp_path):
    system = SetSystem(8, [[0, 1], [2, 3]])
    path = write_shards(tmp_path / "unreach", system)
    # Grab a port that is certainly closed by binding and releasing it.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    stream = ShardedSetStream(
        path, transport="remote", workers=[("127.0.0.1", dead_port)]
    )
    with pytest.raises(RuntimeError, match="cannot reach remote worker"):
        stream.scan_gains((1 << 8) - 1)
    stream.close()


# ----------------------------------------------------------------------
# Crash hygiene: a worker killed mid-batch is loud, leak-free, recoverable
# ----------------------------------------------------------------------
def test_worker_crash_mid_batch_is_loud_and_leak_free(tmp_path):
    """The remote twin of the REPRO_TEST_CRASH_SCAN regression test.

    A real subprocess worker SIGKILLs itself after its first shard
    result; the driver must raise a RuntimeError naming the worker (not
    hang, not return a short scan), leave /dev/shm clean, and a fresh
    worker must serve the same repository immediately afterwards.
    """
    system = SetSystem(64, [[i % 64, (i * 3) % 64] for i in range(30)])
    path = write_shards(tmp_path / "crash", system, chunk_rows=4)
    mask_int = (1 << 64) - 1
    shm_dir = "/dev/shm"
    before = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else set()

    process, address = spawn_local_worker(
        tmp_path, extra_env={remote_mod._CRASH_TEST_ENV: "1"}
    )
    try:
        stream = ShardedSetStream(path, transport="remote", workers=[address])
        with pytest.raises(RuntimeError, match="remote worker .* failed"):
            stream.scan_gains(mask_int)
        stream.close()
    finally:
        process.terminate()
        process.wait(timeout=10)

    if os.path.isdir(shm_dir):  # no leaked SharedMemory segments
        leaked = {
            entry for entry in set(os.listdir(shm_dir)) - before
            if entry.startswith("psm_")
        }
        assert not leaked, leaked

    # No partial state anywhere: a fresh worker reproduces the serial scan.
    process, address = spawn_local_worker(tmp_path)
    try:
        recovered = ShardedSetStream(path, transport="remote",
                                     workers=[address])
        serial = ShardedSetStream(path, jobs=1)
        assert (
            [int(g) for g in recovered.scan_gains(mask_int).gains]
            == [int(g) for g in serial.scan_gains(mask_int).gains]
        )
        recovered.close()
        serial.close()
    finally:
        process.terminate()
        process.wait(timeout=10)


def test_spawned_worker_round_trip(tmp_path):
    """The subprocess worker (the CLI path) serves a real solve."""
    system = SetSystem(24, [[i % 24, (i * 5) % 24] for i in range(18)])
    path = write_shards(tmp_path / "spawn", system, chunk_rows=3)
    reference = ThresholdGreedy().solve(ShardedSetStream(path, jobs=1))
    process, address = spawn_local_worker(tmp_path)
    try:
        stream = ShardedSetStream(path, transport="remote", workers=[address])
        result = ThresholdGreedy().solve(stream)
        assert result.selection == reference.selection
        assert result.passes == reference.passes
        assert result.peak_memory_words == reference.peak_memory_words
        stream.close()
    finally:
        process.terminate()
        process.wait(timeout=10)


def test_repo_cache_eviction_defers_while_busy(tmp_path):
    """Evicting a repository a scan still holds must not close its mmaps.

    The server's cache may be asked to drop an entry (same-path rewrite,
    LRU overflow) while another connection thread is mid-scan on it;
    the close must defer to the last release (regression for the
    use-after-close race)."""
    from repro.setsystem.shards import ShardFormatError

    system = SetSystem(8, [[0, 1], [2, 3]])
    path = write_shards(tmp_path / "busy", system)
    server = WorkerServer(tmp_path)
    try:
        token = manifest_token(path)
        key, repo = server._open_repository(str(path), token)  # refs = 1
        with server._repo_lock:
            server._evict_locked(key)  # busy: doomed, NOT closed
        assert repo.row_mask(0) == 0b11  # still scannable
        server._release_repository(key)  # last holder gone: now closed
        with pytest.raises(ShardFormatError, match="closed"):
            repo.row_mask(0)

        # A cache hit on a doomed-but-busy entry revives it: the entry
        # is hot again, so draining to zero holders keeps it cached.
        key, repo = server._open_repository(str(path), token)
        with server._repo_lock:
            server._evict_locked(key)
        key2, repo2 = server._open_repository(str(path), token)
        assert key2 == key and repo2 is repo
        server._release_repository(key)
        server._release_repository(key)
        assert repo.row_mask(1) == 0b1100  # revived: stays open, cached

        # Idle eviction closes immediately.
        with server._repo_lock:
            server._evict_locked(key)
        with pytest.raises(ShardFormatError, match="closed"):
            repo.row_mask(0)
    finally:
        server.stop()


def test_manifest_token_is_content_keyed(tmp_path):
    system = SetSystem(8, [[0, 1], [2, 3]])
    path = write_shards(tmp_path / "t1", system)
    token = manifest_token(path)
    assert token == manifest_token(path)  # stable
    other = write_shards(tmp_path / "t2", SetSystem(8, [[0], [1, 2, 3]]))
    assert token != manifest_token(other)


# ----------------------------------------------------------------------
# Stale repositories: typed wire error, precise eviction, driver salvage
# ----------------------------------------------------------------------
def _churn_and_fold(path):
    """Land one delta and fold it, rewriting the base manifest."""
    from repro.setsystem.deltas import apply_delta, compact

    apply_delta(path, [{"op": "insert", "elements": [0, 1]}])
    compact(path)


def test_stale_repository_error_is_typed_and_keeps_connection(
    tmp_path, worker_fleet
):
    """A cold worker whose disk moved past the driver's token reports the
    typed retriable ``stale-repository`` error — and keeps the
    connection, because the repository moved, not the worker failed."""
    from repro.engine.transport.remote import send_bytes

    system = SetSystem(8, [[0, 1], [2, 3]])
    path = write_shards(tmp_path / "stale-wire", system)
    old = manifest_token(path)
    _churn_and_fold(path)
    assert manifest_token(path) != old
    host, port = worker_fleet[0]
    with socket.create_connection((host, port), timeout=10.0) as sock:
        send_json(sock, {"op": "hello", "protocol": PROTOCOL_VERSION})
        assert recv_json(sock)["op"] == "hello"
        send_json(sock, {
            "op": "scan", "path": str(path), "token": list(old), "n": 8,
            "shards": [0], "min_capture_gain": None, "capture_ids": None,
            "best_only": False, "include_gains": True,
            "accept_threshold": None,
        })
        send_bytes(sock, (255).to_bytes(1, "little"))  # the mask frame
        reply = recv_json(sock)
        assert reply["op"] == "error"
        assert reply["kind"] == "stale-repository"
        assert "rewritten" in reply["message"]
        # The connection survived the typed error: the worker still
        # serves, and its pong carries the eviction counters.
        send_json(sock, {"op": "ping"})
        pong = recv_json(sock)
        assert pong["op"] == "pong"
        assert set(pong["evictions"]) == {"stale", "overflow"}


def test_worker_cache_eviction_is_precise_and_counted(tmp_path):
    """Opening a path's *new* generation sweeps exactly the superseded
    cache entries for that path — never unrelated repositories — and
    every eviction is counted by cause."""
    from repro.engine import StaleRepositoryError

    path_a = write_shards(tmp_path / "gen-a", SetSystem(8, [[0, 1], [2, 3]]))
    path_b = write_shards(tmp_path / "gen-b", SetSystem(8, [[4, 5], [6, 7]]))
    server = WorkerServer(tmp_path)
    try:
        token_a = manifest_token(path_a)
        token_b = manifest_token(path_b)
        key_a, _ = server._open_repository(str(path_a), token_a)
        key_b, _ = server._open_repository(str(path_b), token_b)
        server._release_repository(key_a)
        server._release_repository(key_b)

        # A token matching neither the cache nor the disk is the typed
        # stale error — and evicts nothing (the cached generation may
        # still be serving another driver).
        with pytest.raises(StaleRepositoryError, match="rewritten"):
            server._open_repository(
                str(path_a), [token_a[0] + 1, token_a[1] ^ 1]
            )
        assert server._evictions == {"stale": 0, "overflow": 0}
        assert key_a in server._repos and key_b in server._repos

        _churn_and_fold(path_a)
        token_a2 = manifest_token(path_a)
        assert token_a2 != token_a
        # Warm cache: the superseded generation is still served on a
        # cache hit (the driver that opened it must finish its scan on
        # exactly those bits).
        key_hit, _ = server._open_repository(str(path_a), token_a)
        assert key_hit == key_a
        server._release_repository(key_hit)
        assert server._evictions["stale"] == 0

        # First sight of the NEW generation sweeps the old entry for
        # this path — and only this path.
        key_a2, _ = server._open_repository(str(path_a), token_a2)
        assert key_a2 != key_a
        assert server._evictions == {"stale": 1, "overflow": 0}
        assert key_a not in server._repos
        assert key_b in server._repos  # unrelated repository untouched
        server._release_repository(key_a2)
    finally:
        server.stop()


def test_driver_salvages_when_every_worker_reports_stale(tmp_path):
    """An online compaction lands mid-stream: cold workers report the
    typed stale error for the driver's generation, and the driver
    salvages the scan through its own open handle — bit-identically to
    the generation it opened, with the whole episode in the fault log."""
    from repro.setsystem.deltas import apply_delta, compact

    system = SetSystem(32, [[i % 32, (i * 7) % 32] for i in range(24)])
    path = write_shards(tmp_path / "salvage", system, chunk_rows=3)
    mask_int = (1 << 32) - 1
    servers = [WorkerServer(tmp_path).start(), WorkerServer(tmp_path).start()]
    try:
        stream = ShardedSetStream(
            path, transport="remote",
            workers=[server.address for server in servers],
        )
        baseline = [int(g) for g in stream.scan_gains(mask_int).gains]
        serial = ShardedSetStream(path, jobs=1)
        assert baseline == [
            int(g) for g in serial.scan_gains(mask_int).gains
        ]
        serial.close()

        # The repository moves underneath the open stream...
        apply_delta(path, [{"op": "insert", "elements": [0, 1, 2]},
                           {"op": "delete", "id": 3}])
        compact(path, online=True)
        # ...and the workers lose their cached copy of the old family,
        # so the driver's token can no longer be served remotely at all.
        for server in servers:
            with server._repo_lock:
                for key in list(server._repos):
                    server._evict_locked(key)

        again = [int(g) for g in stream.scan_gains(mask_int).gains]
        assert again == baseline  # the opened generation, bit-for-bit
        kinds = {event.kind for event in stream.fault_log.events}
        assert "stale-repository" in kinds
        assert "stale-salvage" in kinds
        stream.close()
    finally:
        for server in servers:
            server.stop()


class TestThroughputPlacement:
    """The EWMA placement model (DESIGN.md §14.2), without sockets.

    ``_place_batches`` is pure given the health table, so the model is
    pinned directly: cold fleets place deterministically and balanced,
    observed throughput shifts load to fast lanes, and cache affinity
    discounts a batch's cost at its home worker.  The end-to-end skew
    (a delay-proxied worker delivering fewer shards) is asserted by the
    chaos-smoke CI job on the placement ledger.
    """

    def _executor(self):
        return RemoteScanExecutor(["a:1", "b:2"])

    def _batches(self, costs):
        from repro.engine.transport.remote import _Batch

        shards = 0
        batches = []
        for index, cost in enumerate(costs):
            batches.append(_Batch(index, [shards], cost=cost))
            shards += 1
        return batches

    def _load(self, assignment, batches):
        load: dict = {}
        for batch in batches:
            worker = assignment[batch.index]
            load[worker] = load.get(worker, 0) + batch.cost
        return load

    def test_cold_fleet_is_deterministic_and_balanced(self):
        executor = self._executor()
        batches = self._batches([8, 7, 5, 4, 2, 1])
        first = executor._place_batches(batches, executor.workers, None)
        assert first == executor._place_batches(
            batches, executor.workers, None
        )
        load = self._load(first, batches)
        # LPT over equal (fleet-average) rates: 8+4+1 vs 7+5+2.
        assert sorted(load.values()) == [13, 14]

    def test_observed_throughput_shifts_load(self):
        executor = self._executor()
        fast, slow = executor.workers
        # Same elapsed wall-clock, 4x the delivered units.
        executor._note_throughput(fast, 400, 1.0)
        executor._note_throughput(slow, 100, 1.0)
        batches = self._batches([8, 7, 5, 4, 2, 1])
        assignment = executor._place_batches(
            batches, executor.workers, None
        )
        load = self._load(assignment, batches)
        assert load[fast] > load[slow]
        # The 4x lane should carry roughly 4/5 of the total cost.
        assert load[fast] >= 20

    def test_cache_affinity_discounts_the_home_worker(self):
        executor = self._executor()
        home, other = executor.workers
        key = ("/repo", (1, 2))
        # Every shard's last delivery came hot from ``home``.
        executor._affinity = (key, {shard: home for shard in range(4)})
        batches = self._batches([4, 4, 4, 4])
        with_affinity = self._load(
            executor._place_batches(batches, executor.workers, key), batches
        )
        stale_key = ("/repo", (9, 9))
        without = self._load(
            executor._place_batches(
                batches, executor.workers, stale_key
            ),
            batches,
        )
        # A different scan's affinity map must not leak in: the stale
        # key splits the equal-cost batches evenly...
        assert sorted(without.values()) == [8, 8]
        # ...while the matching key leans on the warm lane (discounted
        # cost makes home's projected finish earlier at equal load).
        assert with_affinity.get(home, 0) > with_affinity.get(other, 0)
