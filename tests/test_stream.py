"""Tests for the streaming access model."""

from __future__ import annotations

import pytest

from repro.setsystem import SetSystem
from repro.streaming import ResourceReport, SetStream, StreamAccessError


class TestPassCounting:
    def test_initial_state(self, tiny_system):
        stream = SetStream(tiny_system)
        assert stream.passes == 0
        assert stream.n == 4 and stream.m == 5

    def test_full_pass_counts_once(self, tiny_system):
        stream = SetStream(tiny_system)
        items = list(stream.iterate())
        assert stream.passes == 1
        assert [set_id for set_id, _ in items] == list(range(5))

    def test_multiple_passes(self, tiny_system):
        stream = SetStream(tiny_system)
        for _ in range(3):
            list(stream.iterate())
        assert stream.passes == 3

    def test_abandoned_pass_still_counts(self, tiny_system):
        stream = SetStream(tiny_system)
        for set_id, _ in stream.iterate():
            if set_id == 1:
                break
        assert stream.passes == 1
        # After the early exit, a new pass can be opened.
        list(stream.iterate())
        assert stream.passes == 2

    def test_nested_pass_rejected(self, tiny_system):
        stream = SetStream(tiny_system)
        iterator = stream.iterate()
        next(iterator)
        with pytest.raises(StreamAccessError):
            next(stream.iterate())
        iterator.close()

    def test_reset(self, tiny_system):
        stream = SetStream(tiny_system)
        list(stream.iterate())
        stream.reset_passes()
        assert stream.passes == 0

    def test_reset_mid_pass_rejected(self, tiny_system):
        stream = SetStream(tiny_system)
        iterator = stream.iterate()
        next(iterator)
        with pytest.raises(StreamAccessError):
            stream.reset_passes()
        iterator.close()


class TestOrderAndContent:
    def test_repository_order(self, tiny_system):
        stream = SetStream(tiny_system)
        sets = [r for _, r in stream.iterate()]
        assert sets == list(tiny_system.sets)

    def test_verify_solution_does_not_cost_a_pass(self, tiny_system):
        stream = SetStream(tiny_system)
        assert stream.verify_solution([0, 1])
        assert not stream.verify_solution([0])
        assert stream.passes == 0


class TestResourceReport:
    def test_as_row(self):
        report = ResourceReport(passes=3, peak_memory_words=10, solution_size=2)
        row = report.as_row()
        assert row["passes"] == 3
        assert row["space(words)"] == 10
        assert row["|sol|"] == 2

    def test_extra_fields_merge(self):
        report = ResourceReport(extra={"algorithm": "x"})
        assert report.as_row()["algorithm"] == "x"
