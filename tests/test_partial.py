"""Tests for eps-Partial Set Cover (offline + streaming)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.offline import InfeasibleInstanceError, exact_cover
from repro.partial import (
    PartialIterSetCover,
    PartialThreshold,
    coverage_requirement,
    exact_partial_cover,
    partial_greedy_cover,
)
from repro.setsystem import SetSystem
from repro.streaming import SetStream
from repro.workloads import planted_instance, uniform_random_instance


class TestCoverageRequirement:
    def test_eps_zero_requires_everything(self):
        assert coverage_requirement(10, 0.0) == 10

    def test_rounding_up(self):
        assert coverage_requirement(10, 0.25) == 8
        assert coverage_requirement(10, 0.01) == 10

    def test_bad_eps(self):
        with pytest.raises(ValueError):
            coverage_requirement(10, 1.0)
        with pytest.raises(ValueError):
            coverage_requirement(10, -0.1)


class TestPartialGreedy:
    def test_eps_zero_matches_full_greedy(self, tiny_system):
        from repro.offline import greedy_cover

        assert partial_greedy_cover(tiny_system, 0.0) == greedy_cover(tiny_system)

    def test_partial_needs_fewer_sets(self, singleton_system):
        full = partial_greedy_cover(singleton_system, 0.0)
        partial = partial_greedy_cover(singleton_system, 0.4)
        assert len(partial) == 3  # cover ceil(0.6*5) = 3 singletons
        assert len(partial) < len(full)

    def test_meets_requirement(self, uniform_small):
        for eps in (0.0, 0.1, 0.3):
            cover = partial_greedy_cover(uniform_small, eps)
            covered = len(uniform_small.covered_by(cover))
            assert covered >= coverage_requirement(uniform_small.n, eps)

    def test_infeasible_requirement(self, infeasible_system):
        # Element 3 of 4 is uncoverable: 75% is reachable, 100% is not.
        assert partial_greedy_cover(infeasible_system, 0.25)
        with pytest.raises(InfeasibleInstanceError):
            partial_greedy_cover(infeasible_system, 0.0)


class TestExactPartial:
    def test_eps_zero_matches_exact(self, tiny_system):
        assert len(exact_partial_cover(tiny_system, 0.0)) == len(
            exact_cover(tiny_system)
        )

    def test_partial_is_cheaper_on_singletons(self, singleton_system):
        assert len(exact_partial_cover(singleton_system, 0.4)) == 3

    def test_never_exceeds_greedy(self, uniform_small):
        for eps in (0.0, 0.2):
            exact_size = len(exact_partial_cover(uniform_small, eps))
            greedy_size = len(partial_greedy_cover(uniform_small, eps))
            assert exact_size <= greedy_size

    def test_meets_requirement_exactly_when_optimal(self):
        # Two sets of 3 elements + one of 6: with eps allowing 3 misses,
        # one 6-set... construct: n=9.
        system = SetSystem(9, [[0, 1, 2], [3, 4, 5], [6, 7, 8], list(range(6))])
        cover = exact_partial_cover(system, eps=1 / 3)
        covered = len(system.covered_by(cover))
        assert covered >= coverage_requirement(9, 1 / 3)
        assert len(cover) == 1  # the 6-element set suffices

    def test_infeasible(self, infeasible_system):
        with pytest.raises(InfeasibleInstanceError):
            exact_partial_cover(infeasible_system, 0.0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.sampled_from([0.0, 0.2, 0.4]),
    )
    def test_exact_partial_is_minimal(self, seed, eps):
        import itertools

        system = uniform_random_instance(8, 6, density=0.35, seed=seed)
        cover = exact_partial_cover(system, eps)
        required = coverage_requirement(system.n, eps)
        assert len(system.covered_by(cover)) >= required
        # No smaller selection reaches the requirement.
        for smaller in range(len(cover)):
            assert not any(
                len(system.covered_by(combo)) >= required
                for combo in itertools.combinations(range(system.m), smaller)
            )


class TestPartialIterSetCover:
    def test_eps_zero_behaves_like_full(self):
        planted = planted_instance(n=60, m=40, opt=4, seed=3)
        stream = SetStream(planted.system)
        result = PartialIterSetCover(eps=0.0, seed=1).solve(stream)
        assert result.feasible
        assert stream.verify_solution(result.selection)

    def test_partial_coverage_goal_met(self):
        planted = planted_instance(n=100, m=60, opt=5, seed=4)
        for eps in (0.1, 0.3):
            stream = SetStream(planted.system)
            result = PartialIterSetCover(eps=eps, seed=1).solve(stream)
            assert result.feasible
            covered = len(planted.system.covered_by(result.selection))
            assert covered >= coverage_requirement(100, eps)

    def test_partial_uses_fewer_sets(self, singleton_system):
        full = PartialIterSetCover(eps=0.0, seed=0).solve(
            SetStream(singleton_system)
        )
        partial = PartialIterSetCover(eps=0.4, seed=0).solve(
            SetStream(singleton_system)
        )
        assert partial.solution_size < full.solution_size

    def test_eps_validated(self):
        with pytest.raises(ValueError):
            PartialIterSetCover(eps=1.0)

    def test_pass_budget_respected(self):
        planted = planted_instance(n=80, m=50, opt=4, seed=5)
        stream = SetStream(planted.system)
        result = PartialIterSetCover(eps=0.2, seed=1).solve(stream)
        assert result.passes <= 2 * 2 + 1  # default delta = 1/2


class TestPartialThreshold:
    def test_single_pass(self, uniform_small):
        stream = SetStream(uniform_small)
        result = PartialThreshold(eps=0.1).solve(stream)
        assert result.passes == 1

    def test_coverage_goal_met(self):
        system = uniform_random_instance(120, 80, density=0.08, seed=6)
        for eps in (0.05, 0.25):
            stream = SetStream(system)
            result = PartialThreshold(eps=eps).solve(stream)
            assert result.feasible
            covered = len(system.covered_by(result.selection))
            assert covered >= coverage_requirement(120, eps)

    def test_larger_eps_never_needs_more_sets(self):
        system = uniform_random_instance(120, 80, density=0.08, seed=7)
        sizes = []
        for eps in (0.0, 0.2, 0.4):
            result = PartialThreshold(eps=eps).solve(SetStream(system))
            sizes.append(result.solution_size)
        assert sizes[0] >= sizes[1] >= sizes[2]

    def test_eps_validated(self):
        with pytest.raises(ValueError):
            PartialThreshold(eps=-0.1)
