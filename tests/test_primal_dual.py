"""Tests for the primal-dual f-approximation solver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.communication import random_intersection_set_chasing
from repro.lowerbounds import reduce_isc_to_set_cover
from repro.offline import (
    InfeasibleInstanceError,
    PrimalDualSolver,
    exact_cover,
    max_frequency,
    primal_dual_cover,
)
from repro.setsystem import SetSystem
from repro.workloads import uniform_random_instance


class TestMaxFrequency:
    def test_basic(self, tiny_system):
        assert max_frequency(tiny_system) == 2

    def test_empty(self):
        assert max_frequency(SetSystem(0, [])) == 0

    def test_disjoint_partition(self):
        assert max_frequency(SetSystem(4, [[0, 1], [2, 3]])) == 1


class TestPrimalDual:
    def test_produces_cover(self, tiny_system):
        cover = primal_dual_cover(tiny_system)
        assert tiny_system.is_cover(cover)

    def test_empty_universe(self):
        assert primal_dual_cover(SetSystem(0, [])) == []

    def test_infeasible(self, infeasible_system):
        with pytest.raises(InfeasibleInstanceError):
            primal_dual_cover(infeasible_system)

    def test_vertex_cover_style_instance_within_factor_two(self):
        """Edges as elements, vertices as sets: f = 2, so the primal-dual
        cover is within 2x of optimal — the classic special case."""
        # A cycle on 6 vertices: edges e_i = {v_i, v_{i+1}}.
        edges = 6
        sets = [[] for _ in range(6)]
        for e in range(edges):
            sets[e].append(e)
            sets[(e + 1) % 6].append(e)
        system = SetSystem(edges, sets)
        assert max_frequency(system) == 2
        pd = primal_dual_cover(system)
        optimum = len(exact_cover(system))
        assert system.is_cover(pd)
        assert len(pd) <= 2 * optimum

    def test_frequency_two_on_reduction_instances(self):
        """Section 5 instances have f = 2 on vertex elements; primal-dual
        gives a 2-ish approximation where greedy has no such promise."""
        isc = random_intersection_set_chasing(n=3, p=2, max_out_degree=1, seed=4)
        reduction = reduce_isc_to_set_cover(isc)
        pd = primal_dual_cover(reduction.system)
        assert reduction.system.is_cover(pd)
        optimum = len(exact_cover(reduction.system))
        f = max_frequency(reduction.system)
        assert len(pd) <= f * optimum

    def test_reverse_delete_removes_redundancy(self):
        # The first tight set becomes redundant once singletons are tight.
        system = SetSystem(3, [[0, 1, 2], [0], [1], [2]])
        cover = primal_dual_cover(system)
        # No set in the output is removable.
        for drop in range(len(cover)):
            assert not system.is_cover(cover[:drop] + cover[drop + 1 :])

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_f_approximation_guarantee(self, seed):
        system = uniform_random_instance(9, 7, density=0.3, seed=seed)
        cover = primal_dual_cover(system)
        assert system.is_cover(cover)
        f = max_frequency(system)
        optimum = len(exact_cover(system))
        assert len(cover) <= f * optimum


class TestSolverInterface:
    def test_solver_protocol(self, tiny_system):
        solver = PrimalDualSolver()
        assert tiny_system.is_cover(solver.solve(tiny_system))
        assert solver.rho_for(tiny_system) == 2.0
