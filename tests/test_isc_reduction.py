"""Tests for the Section 5 reduction (Theorem 5.4, Lemmas 5.5-5.7)."""

from __future__ import annotations

import pytest

from repro.communication import random_intersection_set_chasing
from repro.lowerbounds import (
    certificate_cover,
    check_element_and_set_counts,
    check_gap_with_exact_solver,
    check_mandatory_sets,
    reduce_isc_to_set_cover,
)
from repro.offline import exact_cover, greedy_cover


def make_reduction(n=3, p=2, d=1, seed=0):
    isc = random_intersection_set_chasing(n=n, p=p, max_out_degree=d, seed=seed)
    return reduce_isc_to_set_cover(isc)


class TestStructure:
    @pytest.mark.parametrize("n,p", [(2, 2), (3, 2), (2, 3), (4, 2)])
    def test_counts_match_paper(self, n, p):
        red = make_reduction(n=n, p=p, seed=1)
        check_element_and_set_counts(red)

    def test_mandatory_coverage_structure(self):
        for seed in range(5):
            check_mandatory_sets(make_reduction(seed=seed))

    def test_every_element_coverable(self):
        red = make_reduction(seed=2)
        assert red.system.is_feasible()

    def test_r_and_t_sets_have_size_two_or_less(self):
        red = make_reduction(seed=3)
        for name, index in red.set_index.items():
            if name[0] in ("R", "T"):
                assert len(red.system[index]) <= 2

    def test_m_is_linear_in_elements(self):
        """Theorem 5.4 needs m = O(n); the construction gives
        |F| = (4p+1) n_chase vs |U| = (4p+2) n_chase + 2p."""
        red = make_reduction(n=4, p=3, seed=4)
        assert red.system.m < red.system.n


class TestGap:
    @pytest.mark.parametrize("seed", range(8))
    def test_optimum_tracks_isc_output(self, seed):
        red = make_reduction(n=3, p=2, d=1, seed=seed)
        report = check_gap_with_exact_solver(red)
        assert report["optimum"] == report["expected"]

    def test_gap_with_fanout(self):
        for seed in range(4):
            red = make_reduction(n=2, p=2, d=2, seed=seed)
            check_gap_with_exact_solver(red)

    def test_gap_with_three_layers(self):
        for seed in range(3):
            red = make_reduction(n=2, p=3, d=1, seed=seed)
            check_gap_with_exact_solver(red)

    def test_greedy_cannot_certify_gap(self):
        """The gap is a statement about *optimal* covers; greedy typically
        overshoots the baseline, which is why exact solving (or 1/(2 delta)
        passes) is the right regime for Theorem 5.4."""
        red = make_reduction(n=3, p=2, seed=5)
        greedy_size = len(greedy_cover(red.system))
        assert greedy_size >= red.baseline


class TestCertificate:
    def test_certificate_exists_iff_isc_one(self):
        seen = {True: 0, False: 0}
        for seed in range(15):
            red = make_reduction(n=3, p=2, seed=seed)
            cert = certificate_cover(red)
            if red.isc.output():
                assert cert is not None
                seen[True] += 1
            else:
                assert cert is None
                seen[False] += 1
        assert seen[True] > 0 and seen[False] > 0

    def test_certificate_is_tight_cover(self):
        for seed in range(15):
            red = make_reduction(n=3, p=2, seed=seed)
            cert = certificate_cover(red)
            if cert is None:
                continue
            assert len(cert) == len(set(cert)) == red.baseline
            assert red.system.is_cover(cert)

    def test_certificate_matches_exact_optimum(self):
        for seed in range(6):
            red = make_reduction(n=2, p=2, seed=seed)
            cert = certificate_cover(red)
            if cert is not None:
                assert len(cert) == len(exact_cover(red.system))
