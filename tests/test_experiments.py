"""The ``repro experiments`` orchestrator: schema, parity, docs injection."""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    SCHEMA,
    SUITES,
    available_suites,
    render_tables,
    run_suite,
    update_experiments_md,
)

_MARKED = "\n".join(
    [
        "# EXPERIMENTS",
        "",
        "<!-- experiments:smoke:begin -->",
        "_stale_",
        "<!-- experiments:smoke:end -->",
        "",
    ]
)


def test_available_suites_cover_registry():
    suites = available_suites()
    assert set(suites) == set(SUITES)
    assert all(isinstance(desc, str) and desc for desc in suites.values())


def test_unknown_suite_raises(tmp_path):
    with pytest.raises(ValueError, match="unknown suite"):
        run_suite("nope", output_dir=tmp_path, docs_path=None)


def test_smoke_suite_payload_schema_and_report(tmp_path):
    payload = run_suite("smoke", seed=0, output_dir=tmp_path, docs_path=None)

    assert payload["schema"] == SCHEMA
    assert payload["suite"] == "smoke"
    assert payload["seed"] == 0
    assert payload["command"] == "python -m repro experiments --suite smoke --seed 0"
    assert {"python", "numpy", "platform"} <= set(payload["environment"])
    assert payload["rows"] and payload["tables"]

    # Parity rows all matched, and the accounting row is bounded.
    parity = [r for r in payload["rows"] if "match" in r]
    assert parity and all(r["match"] for r in parity)
    accounting = [r for r in payload["rows"] if r.get("check") == "accounting"]
    assert accounting and accounting[0]["bounded"]
    assert accounting[0]["peak_words"] < accounting[0]["repository_words"]

    # Sharded space exceeds in-memory space by exactly the chunk buffer.
    for row in parity:
        assert (
            row["peak_words_sharded"]
            == row["peak_words_memory"] + row["buffer_words"]
        )

    # The JSON report on disk round-trips.
    on_disk = json.loads((tmp_path / "EXPERIMENTS_smoke.json").read_text())
    assert on_disk["schema"] == SCHEMA
    assert on_disk["rows"] == json.loads(json.dumps(payload["rows"]))


def test_docs_injection_replaces_marker_block(tmp_path):
    docs = tmp_path / "EXPERIMENTS.md"
    docs.write_text(_MARKED)
    payload = run_suite("smoke", seed=1, output_dir=tmp_path, docs_path=docs)

    text = docs.read_text()
    assert "_stale_" not in text
    assert "--suite smoke --seed 1" in text
    assert f"`{SCHEMA}`" in text
    for title in payload["tables"]:
        assert title in text
    # Markers survive, so the block is re-injectable.
    assert "<!-- experiments:smoke:begin -->" in text
    assert "<!-- experiments:smoke:end -->" in text

    # Re-running replaces rather than duplicates.
    update_experiments_md(docs, payload)
    assert docs.read_text().count("--suite smoke --seed 1") == 1


def test_docs_injection_requires_markers(tmp_path):
    docs = tmp_path / "EXPERIMENTS.md"
    docs.write_text("# no markers here\n")
    payload = {"suite": "smoke", "seed": 0, "tables": {}, "notes": []}
    with pytest.raises(ValueError, match="marker block"):
        update_experiments_md(docs, payload)


def test_render_tables_carries_provenance():
    payload = {
        "suite": "parity",
        "seed": 9,
        "tables": {"T": "| a |\n|---|\n| 1 |"},
        "notes": ["note"],
    }
    block = render_tables(payload)
    assert "--suite parity --seed 9" in block
    assert "EXPERIMENTS_parity.json" in block
    assert "**T**" in block and "_note_" in block


def test_repo_experiments_md_has_marker_blocks_for_all_persistent_suites():
    """EXPERIMENTS.md can absorb every suite the orchestrator may write."""
    from pathlib import Path

    text = (Path(__file__).parent.parent / "EXPERIMENTS.md").read_text()
    for suite in SUITES:
        if suite == "smoke":  # CI-only, keeps no block in the repo docs
            continue
        assert f"<!-- experiments:{suite}:begin -->" in text, suite
        assert f"<!-- experiments:{suite}:end -->" in text, suite
