"""Tests for Set Disjointness machinery and oracles (Section 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.communication import (
    ExactDisjointnessOracle,
    Message,
    SketchDisjointnessOracle,
    Transcript,
    encode_family,
    many_vs_many_disjoint,
    many_vs_one_disjoint,
    random_family,
    streaming_to_communication_bits,
)


class TestGroundTruth:
    def test_many_vs_one(self):
        family = [frozenset({0, 1}), frozenset({2})]
        assert many_vs_one_disjoint(family, frozenset({0, 1}))  # {2} disjoint
        assert not many_vs_one_disjoint(family, frozenset({1, 2}))

    def test_many_vs_many(self):
        alice = [frozenset({0}), frozenset({1})]
        bob = [frozenset({0, 1})]
        assert not many_vs_many_disjoint(alice, bob)
        assert many_vs_many_disjoint(alice, [frozenset({2})])


class TestRandomFamily:
    def test_shape(self):
        family = random_family(20, 5, seed=0)
        assert len(family) == 5
        assert all(r <= frozenset(range(20)) for r in family)

    def test_density_near_half(self):
        family = random_family(1000, 4, seed=1)
        for r in family:
            assert 0.4 < len(r) / 1000 < 0.6

    def test_deterministic(self):
        assert random_family(10, 3, seed=5) == random_family(10, 3, seed=5)


class TestEncoding:
    def test_bit_count_is_mn(self):
        family = random_family(16, 4, seed=2)
        assert encode_family(family, 16).bits == 64

    def test_matrix_matches_family(self):
        family = [frozenset({0, 2}), frozenset({1})]
        matrix = np.asarray(encode_family(family, 3).payload)
        assert matrix.tolist() == [[True, False, True], [False, True, False]]


class TestExactOracle:
    def test_agrees_with_ground_truth(self):
        family = random_family(24, 6, seed=3)
        oracle = ExactDisjointnessOracle(encode_family(family, 24))
        rng = np.random.default_rng(4)
        for _ in range(50):
            rb = frozenset(int(e) for e in rng.choice(24, size=5, replace=False))
            assert oracle.exists_disjoint(rb) == many_vs_one_disjoint(family, rb)
        assert oracle.queries == 50


class TestSketchOracle:
    def test_full_budget_is_exact(self):
        family = random_family(20, 5, seed=6)
        msg = encode_family(family, 20)
        sketch = SketchDisjointnessOracle(msg, budget_bits=100, seed=7)
        rng = np.random.default_rng(8)
        for _ in range(40):
            rb = frozenset(int(e) for e in rng.choice(20, size=4, replace=False))
            assert sketch.exists_disjoint(rb) == many_vs_one_disjoint(family, rb)

    def test_zero_budget_answers_from_noise(self):
        family = random_family(40, 6, seed=9)
        msg = encode_family(family, 40)
        sketch = SketchDisjointnessOracle(msg, budget_bits=0, seed=10)
        rng = np.random.default_rng(11)
        disagreements = 0
        for _ in range(200):
            rb = frozenset(int(e) for e in rng.choice(40, size=6, replace=False))
            if sketch.exists_disjoint(rb) != many_vs_one_disjoint(family, rb):
                disagreements += 1
        assert disagreements > 0  # pure guessing cannot track the truth

    def test_budget_clamped(self):
        family = random_family(10, 2, seed=12)
        msg = encode_family(family, 10)
        sketch = SketchDisjointnessOracle(msg, budget_bits=10**6, seed=13)
        assert sketch.message_bits == 20


class TestProtocolBookkeeping:
    def test_message_bits_validated(self):
        with pytest.raises(ValueError):
            Message(payload=None, bits=-1)

    def test_transcript_totals(self):
        transcript = Transcript()
        transcript.send(Message(payload="a", bits=8))
        transcript.send(Message(payload="b", bits=4))
        assert transcript.total_bits == 12
        assert transcript.rounds == 2

    def test_streaming_simulation_formula(self):
        assert streaming_to_communication_bits(10, 2, 4) == 10 * 32 * 2 * 4

    def test_simulation_rejects_negative(self):
        with pytest.raises(ValueError):
            streaming_to_communication_bits(-1, 1, 1)
