"""Tests for workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.offline import exact_cover, greedy_cover
from repro.workloads import (
    blog_watch_instance,
    nested_chain_instance,
    planted_instance,
    threshold_trap_instance,
    uniform_random_instance,
    zipf_instance,
)


class TestUniform:
    def test_feasible_by_default(self):
        system = uniform_random_instance(30, 20, density=0.05, seed=0)
        assert system.is_feasible()

    def test_density_respected(self):
        system = uniform_random_instance(500, 10, density=0.3, seed=1, ensure_feasible=False)
        sizes = [len(r) for r in system.sets]
        assert 0.2 * 500 < np.mean(sizes) < 0.4 * 500

    def test_deterministic(self):
        a = uniform_random_instance(20, 10, seed=3)
        b = uniform_random_instance(20, 10, seed=3)
        assert a == b

    def test_bad_density(self):
        with pytest.raises(ValueError):
            uniform_random_instance(10, 5, density=1.5)


class TestPlanted:
    @pytest.mark.parametrize("opt", [2, 4, 7])
    def test_exact_optimum_is_planted(self, opt):
        planted = planted_instance(n=40, m=30, opt=opt, seed=opt)
        assert len(exact_cover(planted.system)) == opt

    def test_planted_ids_form_a_cover(self):
        planted = planted_instance(n=50, m=35, opt=5, seed=2)
        assert planted.system.is_cover(planted.planted_ids)
        assert len(planted.planted_ids) == planted.opt

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            planted_instance(n=10, m=5, opt=0)
        with pytest.raises(ValueError):
            planted_instance(n=10, m=2, opt=5)

    def test_decoys_present(self):
        planted = planted_instance(n=40, m=30, opt=3, seed=4)
        assert planted.system.m == 30


class TestSkewed:
    def test_zipf_feasible(self):
        assert zipf_instance(60, 40, seed=0).is_feasible()

    def test_zipf_sizes_decay(self):
        system = zipf_instance(200, 50, exponent=1.5, seed=1)
        sizes = [len(r) for r in system.sets]
        assert sizes[0] >= sizes[-1]

    def test_trap_optimum_is_two(self):
        system = threshold_trap_instance(36, seed=2)
        assert len(exact_cover(system)) == 2

    def test_trap_feasible(self):
        assert threshold_trap_instance(25, seed=3).is_feasible()

    def test_chain_greedy_gap(self):
        system = nested_chain_instance(64)
        assert len(exact_cover(system)) == 2
        assert len(greedy_cover(system)) >= 4

    def test_chain_validates_power_of_two(self):
        with pytest.raises(ValueError):
            nested_chain_instance(24)


class TestBlogWatch:
    def test_feasible(self):
        assert blog_watch_instance(topics=50, blogs=20, seed=0).is_feasible()

    def test_aggregators_are_large(self):
        system = blog_watch_instance(
            topics=200, blogs=30, aggregators=2, seed=1
        )
        aggregator_sizes = [len(system[i]) for i in range(2)]
        specialist_sizes = [len(system[i]) for i in range(2, 30)]
        assert min(aggregator_sizes) > np.median(specialist_sizes)

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            blog_watch_instance(topics=10, blogs=2, communities=5)
        with pytest.raises(ValueError):
            blog_watch_instance(topics=10, blogs=5, communities=0)
