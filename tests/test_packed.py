"""Tests for the packed bitmask kernel layer (DESIGN.md §4).

The load-bearing property: *backends never change results*.  The
frozenset backend is the seed's executable reference; the python (big-int)
and numpy (uint64 block matrix) backends must reproduce its covers, gains
and domination pruning exactly — including tie-breaks — on randomized
instances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IterSetCoverConfig, iter_set_cover
from repro.offline import InfeasibleInstanceError, greedy_cover
from repro.sampling import project_onto_sample
from repro.setsystem import SetSystem, bitmap_kernel, pack, resolve_backend
from repro.setsystem.packed import BACKENDS
from repro.streaming import SetStream

PACKED = ("python", "numpy")
ALL = ("frozenset",) + PACKED


def random_system(rng: np.random.Generator, max_n: int = 40, max_m: int = 30) -> SetSystem:
    n = int(rng.integers(1, max_n + 1))
    m = int(rng.integers(0, max_m + 1))
    sets = []
    for _ in range(m):
        size = int(rng.integers(0, n + 1))
        sets.append(rng.choice(n, size=size, replace=False).tolist())
    if m > 1 and rng.random() < 0.4:
        # Inject duplicates: the domination tie-break must handle them.
        sets[int(rng.integers(m))] = list(sets[int(rng.integers(m))])
    return SetSystem(n, sets)


def feasible_random_system(rng: np.random.Generator, **kwargs) -> SetSystem:
    system = random_system(rng, **kwargs)
    sets = [set(r) for r in system.sets] or [set()]
    covered = set().union(*sets)
    for e in range(system.n):
        if e not in covered:
            sets[e % len(sets)].add(e)
    return SetSystem(system.n, sets)


# ----------------------------------------------------------------------
# Kernel algebra
# ----------------------------------------------------------------------
class TestBitmapKernels:
    @pytest.mark.parametrize("backend", ALL)
    @pytest.mark.parametrize("n", [0, 1, 63, 64, 65, 127, 128, 200])
    def test_roundtrip_and_counts(self, backend, n):
        kernel = bitmap_kernel(n, backend)
        elements = list(range(0, n, 3))
        bitmap = kernel.from_indices(elements)
        assert kernel.to_indices(bitmap) == elements
        assert kernel.count(bitmap) == len(elements)
        assert kernel.count(kernel.full()) == n
        assert kernel.is_empty(kernel.empty())
        assert kernel.to_indices(kernel.full()) == list(range(n))

    @pytest.mark.parametrize("backend", ALL)
    def test_algebra_matches_sets(self, backend):
        rng = np.random.default_rng(3)
        kernel = bitmap_kernel(70, backend)
        for _ in range(50):
            a = set(rng.choice(70, size=int(rng.integers(0, 70)), replace=False).tolist())
            b = set(rng.choice(70, size=int(rng.integers(0, 70)), replace=False).tolist())
            ka, kb = kernel.from_indices(a), kernel.from_indices(b)
            assert kernel.to_indices(kernel.intersect(ka, kb)) == sorted(a & b)
            assert kernel.to_indices(kernel.union(ka, kb)) == sorted(a | b)
            assert kernel.to_indices(kernel.subtract(ka, kb)) == sorted(a - b)

    def test_auto_resolution(self):
        assert resolve_backend("auto", n=10, m=4, kind="stream") == "python"
        assert resolve_backend("auto", n=10, m=4, kind="family") == "python"
        assert resolve_backend("auto", n=2000, m=4000, kind="family") == "numpy"
        with pytest.raises(ValueError):
            resolve_backend("cuda")

    def test_backends_tuple_is_public(self):
        assert set(BACKENDS) == {"auto", "python", "numpy", "frozenset"}


# ----------------------------------------------------------------------
# Family kernels: gains / union / projection / domination
# ----------------------------------------------------------------------
class TestFamilyKernels:
    def test_family_kernels_agree_across_backends(self):
        rng = np.random.default_rng(17)
        for _ in range(60):
            system = random_system(rng)
            n, m = system.n, system.m
            families = {b: pack(system.sets, n, b) for b in ALL}
            residual_elems = range(0, n, 2)
            selection = list(range(0, m, 3))
            reference = None
            for backend, family in families.items():
                kernel = family.kernel
                residual = kernel.from_indices(residual_elems)
                snapshot = (
                    family.sizes(),
                    kernel.to_indices(family.union(selection)),
                    family.gains(residual),
                    family.best_gain(residual),
                    family.covers(range(m)),
                    family.project(residual).to_frozensets(),
                    family.non_dominated(),
                )
                if reference is None:
                    reference = snapshot
                else:
                    assert snapshot == reference, backend

    @given(
        st.integers(min_value=1, max_value=12).flatmap(
            lambda n: st.lists(
                st.sets(st.integers(min_value=0, max_value=n - 1)),
                min_size=0,
                max_size=10,
            ).map(lambda sets: (n, sets))
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_domination_property(self, case):
        n, sets = case
        system = SetSystem(n, sets)
        reference = system.packed("frozenset").non_dominated()
        for backend in PACKED:
            assert system.packed(backend).non_dominated() == reference

    def test_project_onto_sample_matches_frozensets(self):
        rng = np.random.default_rng(23)
        for _ in range(30):
            system = random_system(rng)
            sample = frozenset(
                rng.choice(system.n, size=system.n // 2, replace=False).tolist()
            )
            expected = [r & sample for r in system.sets]
            for backend in ALL:
                got = project_onto_sample(system.n, system.sets, sample, backend)
                assert got == expected


# ----------------------------------------------------------------------
# Solver-output equivalence (the PR 1 acceptance property)
# ----------------------------------------------------------------------
class TestSolverEquivalence:
    def test_greedy_identical_on_200_random_instances(self):
        rng = np.random.default_rng(1234)
        compared = 0
        for _ in range(220):
            system = random_system(rng)
            outcomes = {}
            for backend in ALL:
                try:
                    outcomes[backend] = ("cover", greedy_cover(system, backend))
                except InfeasibleInstanceError:
                    outcomes[backend] = ("infeasible", None)
            assert outcomes["python"] == outcomes["frozenset"]
            assert outcomes["numpy"] == outcomes["frozenset"]
            compared += 1
        assert compared >= 200

    def test_domination_identical_on_200_random_instances(self):
        rng = np.random.default_rng(99)
        for _ in range(210):
            system = random_system(rng)
            reference = system.without_dominated_sets(backend="frozenset")[1]
            for backend in PACKED:
                pruned, keep = system.without_dominated_sets(backend=backend)
                assert keep == reference
                assert [pruned[i] for i in range(pruned.m)] == [
                    system[i] for i in keep
                ]

    def test_iter_set_cover_identical_across_backends(self):
        rng = np.random.default_rng(5150)
        for _ in range(25):
            system = feasible_random_system(rng)
            stream_seed = int(rng.integers(0, 2**31))
            selections = {}
            for backend in ALL:
                result = iter_set_cover(
                    SetStream(system),
                    delta=0.5,
                    seed=stream_seed,
                    backend=backend,
                    use_polylog_factors=False,
                )
                selections[backend] = (result.selection, result.passes)
            assert selections["python"] == selections["frozenset"]
            assert selections["numpy"] == selections["frozenset"]

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            IterSetCoverConfig(backend="cuda")


# ----------------------------------------------------------------------
# Tie-breaking regression: without_dominated_sets keeps seed semantics
# ----------------------------------------------------------------------
class TestDominationTieBreaks:
    @pytest.mark.parametrize("backend", ALL)
    def test_first_duplicate_survives(self, backend):
        system = SetSystem(4, [[0, 1], [0], [2, 3], [2, 3], [1]])
        pruned, keep = system.without_dominated_sets(backend=backend)
        assert keep == [0, 2]  # {0} ⊂ {0,1}; {1} ⊂ {0,1}; first {2,3} wins
        assert pruned.sets == (frozenset({0, 1}), frozenset({2, 3}))

    @pytest.mark.parametrize("backend", ALL)
    def test_duplicate_of_dominated_set_is_dropped(self, backend):
        # Both copies of {0} are strict subsets of {0,1}: neither survives.
        system = SetSystem(2, [[0], [0, 1], [0]])
        _, keep = system.without_dominated_sets(backend=backend)
        assert keep == [1]

    @pytest.mark.parametrize("backend", ALL)
    def test_empty_sets(self, backend):
        # An empty set is dominated by any non-empty set; among only empty
        # sets, the first survives.
        _, keep = SetSystem(2, [[], [0, 1], []]).without_dominated_sets(backend=backend)
        assert keep == [1]
        _, keep = SetSystem(2, [[], []]).without_dominated_sets(backend=backend)
        assert keep == [0]

    @pytest.mark.parametrize("backend", ALL)
    def test_incomparable_sets_all_survive(self, backend):
        system = SetSystem(4, [[0, 1], [1, 2], [2, 3], [3, 0]])
        _, keep = system.without_dominated_sets(backend=backend)
        assert keep == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# Memoized views
# ----------------------------------------------------------------------
class TestMemoization:
    def test_packed_views_are_cached(self):
        system = SetSystem(5, [[0, 1], [2, 3, 4]])
        for backend in ALL:
            assert system.packed(backend) is system.packed(backend)

    def test_universe_is_cached(self):
        system = SetSystem(5, [[0]])
        assert system.universe is system.universe

    def test_masks_returns_fresh_list_from_cached_tuple(self):
        system = SetSystem(4, [[0, 1], [2, 3]])
        first = system.masks()
        first.append(12345)  # caller mutation must not poison the cache
        assert system.masks() == [0b0011, 0b1100]

    def test_is_cover_short_circuits(self):
        # A selection whose first set already covers U must not index
        # further: an out-of-range id later in the iterable is never touched.
        system = SetSystem(3, [[0, 1, 2], [0]])

        def ids():
            yield 0
            raise AssertionError("short-circuit failed: second id was consumed")

        assert system.is_cover(ids())
