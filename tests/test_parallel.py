"""Parallel scan executor: jobs x encoding parity, SHM transport, knobs.

The contract under test (DESIGN.md §6): for every algorithm, every
repository encoding and every ``jobs`` setting, covers, pass counts and
the resident-buffer accounting are **bit-identical** — the executor is
an execution detail, never an observable one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MultiPassGreedy, ThresholdGreedy
from repro.bench import SCALES, build_instance
from repro.core import IterSetCoverConfig, iter_set_cover
from repro.partial.streaming import PartialIterSetCover
from repro.setsystem import SetSystem
from repro.setsystem import parallel as parallel_mod
from repro.setsystem.parallel import (
    ProcessScanExecutor,
    SerialScanExecutor,
    executor_for,
    resolve_jobs,
    shutdown_pools,
)
from repro.setsystem.shards import write_shards
from repro.streaming import SetStream, ShardedSetStream

ENCODINGS_UNDER_TEST = ("dense", "auto")
JOBS_UNDER_TEST = (1, 2, 4)


@pytest.fixture(scope="module", autouse=True)
def _reap_pools():
    yield
    shutdown_pools()


def _random_system(rng: np.random.Generator) -> SetSystem:
    n = int(rng.integers(1, 50))
    m = int(rng.integers(1, 30))
    sets = []
    for _ in range(m):
        size = int(rng.integers(0, n + 1))
        sets.append(rng.choice(n, size=size, replace=False).tolist())
    return SetSystem(n, sets)


def _fingerprint(result, stream):
    return (
        result.selection,
        result.passes,
        result.feasible,
        result.peak_memory_words,
        stream.resident_words,
    )


# ----------------------------------------------------------------------
# Knob resolution
# ----------------------------------------------------------------------
def test_resolve_jobs_validation():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs("4") == 4  # CLI plumbing
    assert resolve_jobs("auto", repository_words=0) == 1
    assert resolve_jobs(None) == resolve_jobs("auto")
    for bad in (0, -1, "zero", 1.5, "many"):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(bad)


def test_executor_for_picks_backend():
    assert isinstance(executor_for(1), SerialScanExecutor)
    executor = executor_for(3)
    assert isinstance(executor, ProcessScanExecutor)
    assert executor.jobs == 3
    with pytest.raises(ValueError):
        ProcessScanExecutor(1)


def test_streams_expose_resolved_jobs(tmp_path):
    system = SetSystem(8, [[0, 1], [2]])
    assert SetStream(system).jobs == 1  # auto stays serial on tiny inputs
    assert SetStream(system, jobs=2).jobs == 2
    path = write_shards(tmp_path / "r", system)
    stream = ShardedSetStream(path, jobs=3)
    assert stream.jobs == 3
    stream.close()


# ----------------------------------------------------------------------
# Scan-level parity: gains, captures, both stream kinds, SHM transport
# ----------------------------------------------------------------------
def test_scan_gains_identical_across_jobs_and_encodings(tmp_path):
    rng = np.random.default_rng(11)
    for case in range(25):
        system = _random_system(rng)
        mask_int = int(rng.integers(0, 2 ** system.n)) if system.n < 60 else (
            sum(1 << e for e in range(0, system.n, 2))
        )
        reference = None
        streams = [lambda j: SetStream(system, jobs=j)]
        for encoding in ENCODINGS_UNDER_TEST:
            path = write_shards(
                tmp_path / f"{case}-{encoding}", system,
                chunk_rows=int(rng.integers(1, 8)), encoding=encoding,
            )
            streams.append(
                lambda j, p=path: ShardedSetStream(p, jobs=j)
            )
        for make in streams:
            for jobs in JOBS_UNDER_TEST:
                stream = make(jobs)
                scan = stream.scan_gains(mask_int, min_capture_gain=1)
                got = ([int(g) for g in scan.gains], scan.captured)
                if reference is None:
                    reference = got
                else:
                    assert got == reference
                assert stream.passes == 1


def test_shared_memory_mask_transport(tmp_path, monkeypatch):
    """Force the SHM path (normally only for huge masks) and check parity."""
    monkeypatch.setattr(parallel_mod, "_SHM_MIN_MASK_BYTES", 0)
    system = SetSystem(100, [[i, (i * 7) % 100] for i in range(40)])
    path = write_shards(tmp_path / "shm", system, chunk_rows=6)
    mask_int = sum(1 << e for e in range(0, 100, 3))
    serial = ShardedSetStream(path, jobs=1).scan_gains(mask_int, min_capture_gain=1)
    parallel = ShardedSetStream(path, jobs=2).scan_gains(mask_int, min_capture_gain=1)
    assert [int(g) for g in serial.gains] == [int(g) for g in parallel.gains]
    assert serial.captured == parallel.captured


def test_best_only_capture_is_the_global_first_max(tmp_path):
    system = SetSystem(12, [[0, 1], [2, 3, 4], [5, 6, 7], [8]])
    path = write_shards(tmp_path / "best", system, chunk_rows=1)
    for jobs in (1, 2):
        stream = ShardedSetStream(path, jobs=jobs)
        scan = stream.scan_gains((1 << 12) - 1, best_only=True)
        from repro.setsystem.packed import first_argmax

        best = first_argmax(scan.gains)
        assert best == 1  # first of the two 3-gain rows
        assert any(i == best for i, _ in scan.captured)
        stream.close()


# ----------------------------------------------------------------------
# Algorithm-level parity: the satellite property test
# ----------------------------------------------------------------------
def test_threshold_parity_on_100_random_instances(tmp_path):
    """covers/passes/resident_words identical across jobs x encoding."""
    rng = np.random.default_rng(23)
    for case in range(105):
        system = _random_system(rng)
        chunk_rows = int(rng.integers(1, 8))
        reference = None
        for encoding in ENCODINGS_UNDER_TEST:
            path = write_shards(tmp_path / f"t{case}-{encoding}", system,
                                chunk_rows=chunk_rows, encoding=encoding)
            jobs_axis = (1, 2) if case % 5 else JOBS_UNDER_TEST
            for jobs in jobs_axis:
                stream = ShardedSetStream(path, jobs=jobs)
                result = ThresholdGreedy().solve(stream)
                fingerprint = _fingerprint(result, stream)
                if reference is None:
                    reference = fingerprint
                else:
                    assert fingerprint == reference, (case, encoding, jobs)
                stream.close()
        # The in-memory stream agrees too (modulo its zero buffer).
        memory = ThresholdGreedy().solve(SetStream(system))
        assert memory.selection == reference[0]
        assert memory.passes == reference[1]


def test_iter_set_cover_parity_on_random_instances(tmp_path):
    rng = np.random.default_rng(31)
    for case in range(20):
        system = _random_system(rng)
        seed = int(rng.integers(0, 2**31))
        kwargs = dict(delta=0.5, seed=seed, use_polylog_factors=False,
                      include_rho=False)
        chunk_rows = int(rng.integers(1, 6))  # same geometry for every config
        reference = None
        for encoding in ENCODINGS_UNDER_TEST:
            path = write_shards(tmp_path / f"i{case}-{encoding}", system,
                                chunk_rows=chunk_rows, encoding=encoding)
            for jobs in (1, 2):
                stream = ShardedSetStream(path, jobs=jobs)
                result = iter_set_cover(stream, **kwargs)
                fingerprint = _fingerprint(result, stream)
                if reference is None:
                    reference = fingerprint
                else:
                    assert fingerprint == reference, (case, encoding, jobs)
                stream.close()


@pytest.mark.parametrize("name,workload,params", SCALES["paper"])
def test_paper_roster_parity_across_jobs_and_encodings(
    tmp_path, name, workload, params
):
    """The paper bench roster, full algorithm set, jobs in {1, 2, 4}."""
    system, _ = build_instance(workload, params, seed=0)
    algorithms = [
        ("threshold", lambda stream: ThresholdGreedy().solve(stream)),
        ("multipass", lambda stream: MultiPassGreedy(max_passes=4).solve(stream)),
        (
            "iter",
            lambda stream: iter_set_cover(
                stream, delta=0.5, seed=7,
                use_polylog_factors=False, include_rho=False,
            ),
        ),
        (
            "partial-iter",
            lambda stream: PartialIterSetCover(
                eps=0.1, seed=7,
                config=IterSetCoverConfig(
                    use_polylog_factors=False, include_rho=False
                ),
            ).solve(stream),
        ),
    ]
    fingerprints: dict[str, tuple] = {}
    for encoding in ENCODINGS_UNDER_TEST:
        path = write_shards(tmp_path / f"{name}-{encoding}", system,
                            encoding=encoding)
        for jobs in JOBS_UNDER_TEST:
            for algo_name, run in algorithms:
                stream = ShardedSetStream(path, jobs=jobs)
                result = run(stream)
                fingerprint = _fingerprint(result, stream)
                reference = fingerprints.setdefault(algo_name, fingerprint)
                assert fingerprint == reference, (algo_name, encoding, jobs)
                stream.close()


def test_capture_only_scans_omit_the_gains_vector(tmp_path):
    system = SetSystem(16, [[0, 1], [2]])
    path = write_shards(tmp_path / "nog", system)
    stream = ShardedSetStream(path)
    scan = stream.scan_gains((1 << 16) - 1, min_capture_gain=1,
                             include_gains=False)
    assert scan.gains is None
    assert [i for i, _ in scan.captured] == [0, 1]
    from repro.setsystem.parallel import capture_words

    assert capture_words(scan.captured) == (2 + 1) + (1 + 1)
    stream.close()


def test_capture_scratch_is_chunk_bounded(tmp_path):
    """Replays hold at most one chunk's captured projections.

    Regression: m near-duplicate heavy sets all clear the pass-start
    threshold.  With one big chunk their projections are co-resident
    (and reported); with small chunks the chunk-streamed replay caps
    the scratch at a chunk's worth — it must never scale with m."""
    n, m = 64, 50
    system = SetSystem(n, [list(range(n)) for _ in range(m)])

    coarse = write_shards(tmp_path / "coarse", system, chunk_rows=m)
    result = ThresholdGreedy().solve(ShardedSetStream(coarse))
    assert result.extra["scan_capture_peak_words"] >= m * (n + 1)

    fine = write_shards(tmp_path / "fine", system, chunk_rows=2)
    bounded = ThresholdGreedy().solve(ShardedSetStream(fine))
    assert bounded.extra["scan_capture_peak_words"] <= 2 * (n + 1)
    assert bounded.selection == result.selection == [0]


def test_set_stream_algorithms_with_process_jobs():
    """In-memory streams accept jobs too (chunks ship to the workers)."""
    system, _ = build_instance("planted", dict(n=100, m=200, opt=8), seed=1)
    for algo in (
        lambda s: ThresholdGreedy().solve(s),
        lambda s: iter_set_cover(s, delta=0.5, seed=3,
                                 use_polylog_factors=False, include_rho=False),
    ):
        baseline = algo(SetStream(system, jobs=1))
        parallel = algo(SetStream(system, jobs=2))
        assert parallel.selection == baseline.selection
        assert parallel.passes == baseline.passes
        assert parallel.peak_memory_words == baseline.peak_memory_words
