"""The local scan-engine backends: jobs x encoding x planner parity, SHM.

The contract under test (DESIGN.md §6, §8, §9.2): for every algorithm,
every repository encoding, every ``jobs`` setting, every transport
backend and planner on/off, covers, pass counts and the resident-buffer
accounting are **bit-identical** — the engine (and its adaptive
schedule) is an execution detail, never an observable one.  Crash
hygiene is part of the contract: a worker dying mid-scan must fail
loudly, leak no SharedMemory, and leave the pool machinery able to
serve the next scan.  The remote backend's half of the contract lives
in ``tests/test_remote.py``; the deprecated ``setsystem.parallel`` shim
is pinned here too.
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest

from repro.baselines import MultiPassGreedy, ThresholdGreedy
from repro.bench import SCALES, build_instance
from repro.core import IterSetCoverConfig, iter_set_cover
from repro.engine import (
    ProcessScanExecutor,
    SerialScanExecutor,
    ThreadScanExecutor,
    executor_for,
    plan_batches,
    resolve_jobs,
    shutdown_pools,
    simulate_accepts,
)
from repro.engine.transport import process as process_mod
from repro.engine.transport import serial as serial_mod
from repro.partial.streaming import PartialIterSetCover
from repro.setsystem import SetSystem
from repro.setsystem.shards import write_shards
from repro.streaming import SetStream, ShardedSetStream

ENCODINGS_UNDER_TEST = ("dense", "auto")
JOBS_UNDER_TEST = (1, 2, 4)
PLANNER_UNDER_TEST = (True, False)
#: The local transport families swept by the parity property tests (the
#: remote family is swept in tests/test_remote.py, which owns workers).
LOCAL_TRANSPORTS = (None, "thread")


@pytest.fixture(scope="module", autouse=True)
def _reap_pools():
    yield
    shutdown_pools()


def _random_system(rng: np.random.Generator) -> SetSystem:
    n = int(rng.integers(1, 50))
    m = int(rng.integers(1, 30))
    sets = []
    for _ in range(m):
        size = int(rng.integers(0, n + 1))
        sets.append(rng.choice(n, size=size, replace=False).tolist())
    return SetSystem(n, sets)


def _fingerprint(result, stream):
    return (
        result.selection,
        result.passes,
        result.feasible,
        result.peak_memory_words,
        stream.resident_words,
    )


# ----------------------------------------------------------------------
# Knob resolution
# ----------------------------------------------------------------------
def test_resolve_jobs_validation():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs("4") == 4  # CLI plumbing
    assert resolve_jobs("auto", repository_words=0) == 1
    assert resolve_jobs(None) == resolve_jobs("auto")
    for bad in (0, -1, "zero", 1.5, "many"):
        # The message names the CLI flag that feeds this knob.
        with pytest.raises(ValueError, match="--jobs"):
            resolve_jobs(bad)


def test_executor_for_picks_backend():
    assert isinstance(executor_for(1), SerialScanExecutor)
    executor = executor_for(3)
    assert isinstance(executor, ProcessScanExecutor)
    assert executor.jobs == 3
    assert executor.planner
    assert not executor_for(3, planner=False).planner
    assert executor_for(1, planner=True).prefetch
    assert not executor_for(1, planner=False).prefetch
    with pytest.raises(ValueError):
        ProcessScanExecutor(1)
    with pytest.raises(ValueError):
        ThreadScanExecutor(1)


def test_executor_for_transport_dispatch():
    """The transport knob picks the backend family; jobs sizes it."""
    assert executor_for(2, transport="thread").transport == "thread"
    assert executor_for(2, transport="process").transport == "process"
    assert executor_for(1, transport="serial").transport == "serial"
    assert executor_for("auto", transport="serial").transport == "serial"
    # A jobs count that cannot take effect errors instead of silently
    # meaning one lane (same policy as workers with a local family).
    with pytest.raises(ValueError, match="serial transport"):
        executor_for(4, transport="serial")
    with pytest.raises(ValueError, match="--jobs"):
        executor_for(0, transport="serial")  # still validated
    # One-lane pools are pure overhead: thread/process degrade to serial.
    assert isinstance(executor_for(1, transport="thread"), SerialScanExecutor)
    assert isinstance(executor_for(1, transport="process"), SerialScanExecutor)
    # local (and None) keep the pre-engine serial-or-process behaviour.
    assert isinstance(executor_for(1, transport="local"), SerialScanExecutor)
    assert isinstance(executor_for(3, transport="local"), ProcessScanExecutor)
    with pytest.raises(ValueError, match="--transport"):
        executor_for(2, transport="carrier-pigeon")
    with pytest.raises(ValueError, match="workers"):
        executor_for(2, transport="remote")


def test_setsystem_parallel_shim_is_deprecated_but_complete():
    """The old import location warns and forwards every public name."""
    import importlib
    import sys

    import repro.engine as engine

    sys.modules.pop("repro.setsystem.parallel", None)
    with pytest.warns(DeprecationWarning, match="repro.engine"):
        shim = importlib.import_module("repro.setsystem.parallel")
    for name in shim.__all__:
        assert getattr(shim, name) is getattr(engine, name), name
    # The pre-engine surface survived the move wholesale.
    for name in ("JOBS_AUTO", "AcceptBatch", "ScanExecutor", "ScanResult",
                 "SerialScanExecutor", "ProcessScanExecutor",
                 "ThreadScanExecutor", "capture_words", "executor_for",
                 "merge_scan_parts", "plan_batches", "resolve_jobs",
                 "shutdown_pools", "simulate_accepts", "thread_map"):
        assert name in shim.__all__, name
    # Attribute access through the package keeps working too (the shim
    # used to be imported eagerly, binding it as a package attribute).
    import repro.setsystem

    assert repro.setsystem.parallel.resolve_jobs is engine.resolve_jobs
    assert repro.setsystem.executor_for is engine.executor_for  # PEP 562
    with pytest.raises(AttributeError):
        repro.setsystem.no_such_name


def test_plan_batches_partitions_contiguously():
    rng = np.random.default_rng(2)
    for _ in range(50):
        costs = [int(c) for c in rng.integers(1, 100, size=int(rng.integers(0, 40)))]
        for jobs in (1, 2, 4):
            batches = plan_batches(costs, jobs)
            flat = sorted(index for batch in batches for index in batch)
            assert flat == list(range(len(costs)))  # exact partition
            for batch in batches:
                assert batch == list(range(batch[0], batch[0] + len(batch)))
            assert len(batches) <= max(1, jobs * 4)
            # deterministic: same inputs, same plan
            assert plan_batches(costs, jobs) == batches


def test_plan_batches_isolates_stragglers_in_chunk_order():
    batches = plan_batches([1, 1, 50, 1, 1, 1], jobs=2, batches_per_worker=2)
    # The straggler chunk gets its own batch, but submission stays in
    # chunk order so streaming consumers drain as completions arrive.
    assert [2] in batches
    assert [batch[0] for batch in batches] == sorted(b[0] for b in batches)


def test_streams_expose_resolved_jobs(tmp_path):
    system = SetSystem(8, [[0, 1], [2]])
    assert SetStream(system).jobs == 1  # auto stays serial on tiny inputs
    assert SetStream(system, jobs=2).jobs == 2
    path = write_shards(tmp_path / "r", system)
    stream = ShardedSetStream(path, jobs=3)
    assert stream.jobs == 3
    stream.close()


# ----------------------------------------------------------------------
# Scan-level parity: gains, captures, both stream kinds, SHM transport
# ----------------------------------------------------------------------
def test_scan_gains_identical_across_jobs_and_encodings(tmp_path):
    rng = np.random.default_rng(11)
    for case in range(25):
        system = _random_system(rng)
        mask_int = int(rng.integers(0, 2 ** system.n)) if system.n < 60 else (
            sum(1 << e for e in range(0, system.n, 2))
        )
        reference = None
        streams = [lambda j: SetStream(system, jobs=j)]
        for encoding in ENCODINGS_UNDER_TEST:
            path = write_shards(
                tmp_path / f"{case}-{encoding}", system,
                chunk_rows=int(rng.integers(1, 8)), encoding=encoding,
            )
            streams.append(
                lambda j, p=path: ShardedSetStream(p, jobs=j)
            )
        for make in streams:
            for jobs in JOBS_UNDER_TEST:
                stream = make(jobs)
                scan = stream.scan_gains(mask_int, min_capture_gain=1)
                got = ([int(g) for g in scan.gains], scan.captured)
                if reference is None:
                    reference = got
                else:
                    assert got == reference
                assert stream.passes == 1


def test_shared_memory_mask_transport(tmp_path, monkeypatch):
    """Force the SHM path (normally only for huge masks) and check parity."""
    monkeypatch.setattr(process_mod, "_SHM_MIN_MASK_BYTES", 0)
    system = SetSystem(100, [[i, (i * 7) % 100] for i in range(40)])
    path = write_shards(tmp_path / "shm", system, chunk_rows=6)
    mask_int = sum(1 << e for e in range(0, 100, 3))
    serial = ShardedSetStream(path, jobs=1).scan_gains(mask_int, min_capture_gain=1)
    parallel = ShardedSetStream(path, jobs=2).scan_gains(mask_int, min_capture_gain=1)
    assert [int(g) for g in serial.gains] == [int(g) for g in parallel.gains]
    assert serial.captured == parallel.captured


def test_best_only_capture_is_the_global_first_max(tmp_path):
    system = SetSystem(12, [[0, 1], [2, 3, 4], [5, 6, 7], [8]])
    path = write_shards(tmp_path / "best", system, chunk_rows=1)
    for jobs in (1, 2):
        stream = ShardedSetStream(path, jobs=jobs)
        scan = stream.scan_gains((1 << 12) - 1, best_only=True)
        from repro.setsystem.packed import first_argmax

        best = first_argmax(scan.gains)
        assert best == 1  # first of the two 3-gain rows
        assert any(i == best for i, _ in scan.captured)
        stream.close()


def test_planner_off_matches_planner_on(tmp_path, monkeypatch):
    """Scheduling is invisible: planner on/off x jobs gives equal scans."""
    monkeypatch.setattr(serial_mod, "_PIPELINE_MIN_CPUS", 1)  # force pipeline
    rng = np.random.default_rng(47)
    for case in range(10):
        system = _random_system(rng)
        path = write_shards(tmp_path / f"p{case}", system,
                            chunk_rows=int(rng.integers(1, 6)))
        mask_int = (sum(1 << e for e in range(0, system.n, 2)) | 1)
        reference = None
        for jobs in JOBS_UNDER_TEST:
            for planner in PLANNER_UNDER_TEST:
                stream = ShardedSetStream(path, jobs=jobs, planner=planner)
                scan = stream.scan_gains(mask_int, min_capture_gain=1)
                got = ([int(g) for g in scan.gains], scan.captured)
                if reference is None:
                    reference = got
                assert got == reference, (case, jobs, planner)
                stream.close()


def test_abandoned_thread_scan_leaves_stream_usable(tmp_path):
    """Early-exiting a thread-transport pass settles its in-flight work.

    The finally block must cancel/await the remaining futures so no pool
    thread is still scanning when the caller closes the repository."""
    system = SetSystem(16, [[i % 16] for i in range(20)])
    path = write_shards(tmp_path / "tabandon", system, chunk_rows=2)
    stream = ShardedSetStream(path, jobs=2, transport="thread")
    parts = stream.scan_gains_chunked((1 << 16) - 1)
    next(parts)
    parts.close()  # abandon mid-pass
    assert stream.passes == 1
    full = stream.scan_gains((1 << 16) - 1)
    assert len(full.gains) == 20
    stream.close()  # no background thread left to race this


def test_abandoned_prefetch_scan_leaves_stream_usable(tmp_path, monkeypatch):
    """Early-exiting a prefetched pass never wedges or orphans work."""
    monkeypatch.setattr(serial_mod, "_PIPELINE_MIN_CPUS", 1)  # force pipeline
    system = SetSystem(16, [[i % 16] for i in range(20)])
    path = write_shards(tmp_path / "abandon", system, chunk_rows=2)
    stream = ShardedSetStream(path, jobs=1, planner=True)
    parts = stream.scan_gains_chunked((1 << 16) - 1)
    next(parts)
    parts.close()  # abandon mid-pass; the pending prefetch must settle
    assert stream.passes == 1
    full = stream.scan_gains((1 << 16) - 1)
    assert len(full.gains) == 20
    stream.close()


# ----------------------------------------------------------------------
# Worker-side residual fusion (scan_accepts_chunked, DESIGN.md §8.4)
# ----------------------------------------------------------------------
def test_simulate_accepts_walks_candidates_sequentially():
    batch = simulate_accepts(0b1111, 2, [(3, 0b0011), (5, 0b0110), (9, 0b1100)])
    assert batch.ids == [3, 9]  # 5's live hit shrank below the threshold
    assert batch.removed == 0b1111
    assert batch.touched == 0b1111
    empty = simulate_accepts(0b1111, 2, [])
    assert (empty.ids, empty.removed, empty.touched) == ([], 0, 0)


def test_scan_accepts_chunked_fuses_worker_side(tmp_path):
    system = SetSystem(8, [[0, 1, 2], [2, 3], [4, 5, 6, 7], [0]])
    path = write_shards(tmp_path / "acc", system, chunk_rows=2)
    for jobs in (1, 2):
        stream = ShardedSetStream(path, jobs=jobs)
        parts = list(stream.scan_accepts_chunked((1 << 8) - 1, 2))
        assert stream.passes == 1
        (s0, cap0, b0), (s1, cap1, b1) = parts
        assert (s0, s1) == (0, 2)
        # Both chunk-0 rows clear the pass-start threshold and are
        # captured, but the in-chunk simulation rejects row 1: row 0's
        # accept leaves it only element 3.
        assert [i for i, _ in cap0] == [0, 1]
        assert b0.ids == [0] and b0.removed == 0b111 and b0.touched == 0b1111
        assert [i for i, _ in cap1] == [2]
        assert b1.ids == [2] and b1.removed == 0b11110000
        stream.close()
    with pytest.raises(ValueError, match="threshold"):
        ShardedSetStream(path).scan_accepts_chunked(1, 0)


def _threshold_replay_reference(stream, shrink=2.0):
    """The PR 3 ThresholdGreedy loop: driver-side replay of captures.

    Kept verbatim as the executable reference the fused worker-side
    accept path must match pick for pick.
    """
    from repro.setsystem.packed import bitmap_kernel

    n = stream.n
    kernel = bitmap_kernel(n, "auto")
    uncovered = kernel.full()
    count = n
    selection = []
    threshold = float(n)
    while count and threshold >= 1.0:
        threshold = max(1.0, threshold / shrink)
        parts = stream.scan_gains_chunked(
            kernel.to_mask_int(uncovered),
            min_capture_gain=math.ceil(threshold),
            include_gains=False,
        )
        for _, _, captured in parts:
            for set_id, projection in captured:
                hit = kernel.intersect(kernel.from_mask_int(projection), uncovered)
                hit_count = kernel.count(hit)
                if hit_count >= threshold:
                    selection.append(set_id)
                    uncovered = kernel.subtract(uncovered, hit)
                    count -= hit_count
        if threshold <= 1.0:
            break
    return selection


def test_fused_accepts_match_the_replay_reference(tmp_path):
    rng = np.random.default_rng(53)
    for case in range(40):
        system = _random_system(rng)
        path = write_shards(tmp_path / f"f{case}", system,
                            chunk_rows=int(rng.integers(1, 5)))
        reference_stream = ShardedSetStream(path)
        reference = _threshold_replay_reference(reference_stream)
        reference_passes = reference_stream.passes
        reference_stream.close()
        for jobs in (1, 2):
            stream = ShardedSetStream(path, jobs=jobs)
            result = ThresholdGreedy().solve(stream)
            assert result.selection == reference, (case, jobs)
            assert result.passes == reference_passes, (case, jobs)
            stream.close()


# ----------------------------------------------------------------------
# Crash hygiene: a dead worker is loud, leak-free and recoverable
# ----------------------------------------------------------------------
def test_worker_crash_is_loud_leak_free_and_recoverable(tmp_path, monkeypatch):
    system = SetSystem(64, [[i % 64, (i * 3) % 64] for i in range(30)])
    path = write_shards(tmp_path / "crash", system, chunk_rows=4)
    mask_int = (1 << 64) - 1
    shm_dir = "/dev/shm"
    before = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else set()

    # Force the mask through SharedMemory and build a fresh pool whose
    # workers inherit the crash hook.
    monkeypatch.setattr(process_mod, "_SHM_MIN_MASK_BYTES", 0)
    shutdown_pools()
    monkeypatch.setenv(process_mod._CRASH_TEST_ENV, "1")
    stream = ShardedSetStream(path, jobs=2)
    with pytest.raises(RuntimeError, match="worker died"):
        stream.scan_gains(mask_int)
    stream.close()
    monkeypatch.delenv(process_mod._CRASH_TEST_ENV)

    if os.path.isdir(shm_dir):  # no leaked SharedMemory segments
        leaked = {
            entry for entry in set(os.listdir(shm_dir)) - before
            if entry.startswith("psm_")
        }
        assert not leaked, leaked
    # The broken pool was discarded: the same jobs count works again.
    recovered = ShardedSetStream(path, jobs=2)
    serial = ShardedSetStream(path, jobs=1)
    assert (
        [int(g) for g in recovered.scan_gains(mask_int).gains]
        == [int(g) for g in serial.scan_gains(mask_int).gains]
    )
    recovered.close()
    serial.close()


# ----------------------------------------------------------------------
# Algorithm-level parity: the satellite property test
# ----------------------------------------------------------------------
def test_threshold_parity_on_100_random_instances(tmp_path):
    """covers/passes/resident_words identical across jobs x encoding x planner."""
    rng = np.random.default_rng(23)
    for case in range(105):
        system = _random_system(rng)
        chunk_rows = int(rng.integers(1, 8))
        reference = None
        for encoding in ENCODINGS_UNDER_TEST:
            path = write_shards(tmp_path / f"t{case}-{encoding}", system,
                                chunk_rows=chunk_rows, encoding=encoding)
            jobs_axis = (1, 2) if case % 5 else JOBS_UNDER_TEST
            planner_axis = PLANNER_UNDER_TEST if case % 7 == 0 else (True,)
            transport_axis = LOCAL_TRANSPORTS if case % 3 == 0 else (None,)
            for jobs in jobs_axis:
                for planner in planner_axis:
                    for transport in transport_axis:
                        if transport == "thread" and jobs < 2:
                            continue  # degenerates to serial, covered above
                        stream = ShardedSetStream(
                            path, jobs=jobs, planner=planner,
                            transport=transport,
                        )
                        result = ThresholdGreedy().solve(stream)
                        fingerprint = _fingerprint(result, stream)
                        if reference is None:
                            reference = fingerprint
                        else:
                            assert fingerprint == reference, (
                                case, encoding, jobs, planner, transport,
                            )
                        stream.close()
        # The in-memory stream agrees too (modulo its zero buffer).
        memory = ThresholdGreedy().solve(SetStream(system))
        assert memory.selection == reference[0]
        assert memory.passes == reference[1]


def test_iter_set_cover_parity_on_random_instances(tmp_path):
    rng = np.random.default_rng(31)
    for case in range(20):
        system = _random_system(rng)
        seed = int(rng.integers(0, 2**31))
        kwargs = dict(delta=0.5, seed=seed, use_polylog_factors=False,
                      include_rho=False)
        chunk_rows = int(rng.integers(1, 6))  # same geometry for every config
        reference = None
        for encoding in ENCODINGS_UNDER_TEST:
            path = write_shards(tmp_path / f"i{case}-{encoding}", system,
                                chunk_rows=chunk_rows, encoding=encoding)
            for jobs in (1, 2):
                stream = ShardedSetStream(path, jobs=jobs)
                result = iter_set_cover(stream, **kwargs)
                fingerprint = _fingerprint(result, stream)
                if reference is None:
                    reference = fingerprint
                else:
                    assert fingerprint == reference, (case, encoding, jobs)
                stream.close()


@pytest.mark.parametrize("name,workload,params", SCALES["paper"])
def test_paper_roster_parity_across_jobs_and_encodings(
    tmp_path, name, workload, params
):
    """The paper bench roster, full algorithm set, jobs in {1, 2, 4}."""
    system, _ = build_instance(workload, params, seed=0)
    algorithms = [
        ("threshold", lambda stream: ThresholdGreedy().solve(stream)),
        ("multipass", lambda stream: MultiPassGreedy(max_passes=4).solve(stream)),
        (
            "iter",
            lambda stream: iter_set_cover(
                stream, delta=0.5, seed=7,
                use_polylog_factors=False, include_rho=False,
            ),
        ),
        (
            "partial-iter",
            lambda stream: PartialIterSetCover(
                eps=0.1, seed=7,
                config=IterSetCoverConfig(
                    use_polylog_factors=False, include_rho=False
                ),
            ).solve(stream),
        ),
    ]
    fingerprints: dict[str, tuple] = {}
    for encoding in ENCODINGS_UNDER_TEST:
        path = write_shards(tmp_path / f"{name}-{encoding}", system,
                            encoding=encoding)
        for jobs in JOBS_UNDER_TEST:
            for algo_name, run in algorithms:
                stream = ShardedSetStream(path, jobs=jobs)
                result = run(stream)
                fingerprint = _fingerprint(result, stream)
                reference = fingerprints.setdefault(algo_name, fingerprint)
                assert fingerprint == reference, (algo_name, encoding, jobs)
                stream.close()


def test_capture_only_scans_omit_the_gains_vector(tmp_path):
    system = SetSystem(16, [[0, 1], [2]])
    path = write_shards(tmp_path / "nog", system)
    stream = ShardedSetStream(path)
    scan = stream.scan_gains((1 << 16) - 1, min_capture_gain=1,
                             include_gains=False)
    assert scan.gains is None
    assert [i for i, _ in scan.captured] == [0, 1]
    from repro.engine import capture_words

    assert capture_words(scan.captured) == (2 + 1) + (1 + 1)
    stream.close()


def test_capture_scratch_is_chunk_bounded(tmp_path):
    """Replays hold at most one chunk's captured projections.

    Regression: m near-duplicate heavy sets all clear the pass-start
    threshold.  With one big chunk their projections are co-resident
    (and reported); with small chunks the chunk-streamed replay caps
    the scratch at a chunk's worth — it must never scale with m."""
    n, m = 64, 50
    system = SetSystem(n, [list(range(n)) for _ in range(m)])

    coarse = write_shards(tmp_path / "coarse", system, chunk_rows=m)
    result = ThresholdGreedy().solve(ShardedSetStream(coarse))
    assert result.extra["scan_capture_peak_words"] >= m * (n + 1)

    fine = write_shards(tmp_path / "fine", system, chunk_rows=2)
    bounded = ThresholdGreedy().solve(ShardedSetStream(fine))
    assert bounded.extra["scan_capture_peak_words"] <= 2 * (n + 1)
    assert bounded.selection == result.selection == [0]


def test_set_stream_algorithms_with_process_jobs():
    """In-memory streams accept jobs too (chunks ship to the workers)."""
    system, _ = build_instance("planted", dict(n=100, m=200, opt=8), seed=1)
    for algo in (
        lambda s: ThresholdGreedy().solve(s),
        lambda s: iter_set_cover(s, delta=0.5, seed=3,
                                 use_polylog_factors=False, include_rho=False),
    ):
        baseline = algo(SetStream(system, jobs=1))
        parallel = algo(SetStream(system, jobs=2))
        assert parallel.selection == baseline.selection
        assert parallel.passes == baseline.passes
        assert parallel.peak_memory_words == baseline.peak_memory_words


# ----------------------------------------------------------------------
# Offline hot paths through the thread executor (DESIGN.md §8.5)
# ----------------------------------------------------------------------
def test_greedy_cover_jobs_parity():
    from repro.offline.greedy import greedy_cover

    rng = np.random.default_rng(77)
    for case in range(15):
        n = int(rng.integers(1, 100))
        m = int(rng.integers(1, 50))
        sets = [
            rng.choice(n, size=int(rng.integers(0, n + 1)), replace=False).tolist()
            for _ in range(m)
        ]
        sets.append(list(range(n)))  # keep the instance feasible
        system = SetSystem(n, sets)
        reference = greedy_cover(system, backend="numpy", jobs=1)
        for jobs in (2, 3):
            assert greedy_cover(system, backend="numpy", jobs=jobs) == reference, case
        # The big-int strategy agrees too, as always.
        assert greedy_cover(system, backend="python") == reference


def test_without_dominated_sets_jobs_parity():
    rng = np.random.default_rng(79)
    for case in range(15):
        n = int(rng.integers(1, 80))
        m = int(rng.integers(1, 60))
        sets = [
            rng.choice(n, size=int(rng.integers(0, n + 1)), replace=False).tolist()
            for _ in range(m)
        ]
        sets.extend(sets[: m // 3])  # duplicates exercise the tie-break
        system = SetSystem(n, sets)
        reference = system.without_dominated_sets(backend="numpy", jobs=1)[1]
        for jobs in (2, 4):
            assert (
                system.without_dominated_sets(backend="numpy", jobs=jobs)[1]
                == reference
            ), case
        assert system.without_dominated_sets(backend="frozenset")[1] == reference


def test_unstarted_scan_iterator_allocates_nothing(tmp_path, monkeypatch):
    """Obtaining (then dropping) a scan iterator must not leak SHM.

    Task construction — including the mask's SharedMemory segment —
    happens inside the generator body, so a never-started iterator
    allocates nothing to clean up."""
    monkeypatch.setattr(process_mod, "_SHM_MIN_MASK_BYTES", 0)
    system = SetSystem(32, [[i % 32] for i in range(12)])
    path = write_shards(tmp_path / "unstarted", system, chunk_rows=3)
    shm_dir = "/dev/shm"
    before = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else set()
    stream = ShardedSetStream(path, jobs=2)
    parts = stream.scan_gains_chunked((1 << 32) - 1)  # opened, never consumed
    del parts
    stream.close()
    if os.path.isdir(shm_dir):
        leaked = {
            entry for entry in set(os.listdir(shm_dir)) - before
            if entry.startswith("psm_")
        }
        assert not leaked, leaked
