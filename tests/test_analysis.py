"""Tests for the analysis helpers (theory formulas + tables)."""

from __future__ import annotations

from repro.analysis import (
    FIGURE_1_1_ROWS,
    cw16_approx,
    dimv14_passes,
    er14_approx,
    format_value,
    geometric_space,
    iter_set_cover_passes,
    iter_set_cover_space,
    render_table,
    single_pass_lb_bits,
    sparse_lb_space,
)


class TestTheoryShapes:
    def test_iter_space_sublinear_in_input(self):
        n, m = 1024, 2048
        assert iter_set_cover_space(n, m, 0.25) < m * n

    def test_iter_space_monotone_in_delta(self):
        assert iter_set_cover_space(1024, 2048, 0.5) > iter_set_cover_space(
            1024, 2048, 0.25
        )

    def test_passes_tradeoff(self):
        assert iter_set_cover_passes(0.25) == 8
        assert dimv14_passes(0.25) == 256  # the exponential gap

    def test_cw16_interpolates(self):
        n = 4096
        assert cw16_approx(n, 1) > cw16_approx(n, 3)
        assert abs(cw16_approx(n, 1) - 2 * n**0.5) < 1e-9

    def test_er14_is_cw16_single_pass_shape(self):
        n = 256
        assert er14_approx(n) == n**0.5

    def test_lower_bound_formulas(self):
        assert single_pass_lb_bits(100, 50) == 5000
        assert sparse_lb_space(100, 8) == 800

    def test_geometric_space_independent_of_m(self):
        assert geometric_space(512) == geometric_space(512)

    def test_figure_rows_well_formed(self):
        assert len(FIGURE_1_1_ROWS) >= 10
        for row in FIGURE_1_1_ROWS:
            assert len(row) == 4


class TestTables:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(3) == "3"
        assert format_value(0.5) == "0.5"
        assert format_value(123456.0) == "1.23e+05"

    def test_render_basic(self):
        table = render_table(
            [{"a": 1, "b": 2.0}, {"a": 10, "b": None}], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert lines[-1].strip().endswith("-")

    def test_render_respects_column_order(self):
        table = render_table([{"x": 1, "y": 2}], columns=["y", "x"])
        header = table.splitlines()[0]
        assert header.index("y") < header.index("x")

    def test_render_collects_late_keys(self):
        table = render_table([{"a": 1}, {"a": 2, "b": 3}])
        assert "b" in table.splitlines()[0]
