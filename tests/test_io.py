"""Tests for set-system serialization."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.setsystem import (
    SetSystem,
    dumps_json,
    dumps_text,
    load,
    loads_json,
    loads_text,
    save,
)


def small_systems():
    return st.integers(min_value=1, max_value=10).flatmap(
        lambda n: st.lists(
            st.sets(st.integers(min_value=0, max_value=n - 1)),
            min_size=0,
            max_size=8,
        ).map(lambda sets: SetSystem(n, sets))
    )


class TestText:
    def test_roundtrip(self, tiny_system):
        assert loads_text(dumps_text(tiny_system)) == tiny_system

    def test_format(self):
        text = dumps_text(SetSystem(3, [[2, 0], []]))
        assert text.splitlines() == ["3 2", "0 2", ""]

    def test_empty_document_rejected(self):
        with pytest.raises(ValueError):
            loads_text("")

    def test_malformed_header(self):
        with pytest.raises(ValueError):
            loads_text("3\n0 1\n")

    def test_missing_lines(self):
        with pytest.raises(ValueError):
            loads_text("3 2\n0 1\n")


class TestJson:
    def test_roundtrip(self, tiny_system):
        assert loads_json(dumps_json(tiny_system)) == tiny_system

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            loads_json('{"n": 3}')


class TestFiles:
    def test_text_file(self, tmp_path, tiny_system):
        path = tmp_path / "instance.txt"
        save(tiny_system, path)
        assert load(path) == tiny_system

    def test_json_file(self, tmp_path, tiny_system):
        path = tmp_path / "instance.json"
        save(tiny_system, path)
        assert load(path) == tiny_system


@given(small_systems())
def test_text_roundtrip_property(system):
    assert loads_text(dumps_text(system)) == system


@given(small_systems())
def test_json_roundtrip_property(system):
    assert loads_json(dumps_json(system)) == system
