"""Tests for geometric instance generators, including Figure 1.2."""

from __future__ import annotations

import pytest

from repro.geometry import (
    count_distinct_projections,
    figure_1_2_instance,
    random_disc_instance,
    random_fat_triangle_instance,
    random_rect_instance,
)


class TestFigure12:
    def test_counts(self):
        inst = figure_1_2_instance(12)
        assert inst.n == 12
        assert inst.m == 36  # (n/2)^2

    def test_every_rectangle_contains_exactly_two_points(self):
        inst = figure_1_2_instance(16)
        for shape in inst.shapes:
            assert len(inst.covered_points(shape)) == 2

    def test_all_projections_distinct(self):
        inst = figure_1_2_instance(16)
        assert count_distinct_projections(inst) == inst.m

    def test_quadratic_growth(self):
        small = figure_1_2_instance(8)
        large = figure_1_2_instance(16)
        assert large.m == 4 * small.m

    def test_odd_n_rejected(self):
        with pytest.raises(ValueError):
            figure_1_2_instance(7)

    def test_pairs_are_one_top_one_bottom(self):
        inst = figure_1_2_instance(10)
        half = 5
        for shape in inst.shapes:
            ids = sorted(inst.covered_points(shape))
            assert ids[0] < half <= ids[1]


@pytest.mark.parametrize(
    "make",
    [random_disc_instance, random_rect_instance, random_fat_triangle_instance],
    ids=["discs", "rects", "triangles"],
)
class TestRandomInstances:
    def test_sizes(self, make):
        inst = make(30, 20, seed=0)
        assert inst.n == 30
        assert inst.m >= 20  # feasibility patching may add shapes

    def test_feasible(self, make):
        assert make(30, 20, seed=1).is_feasible()

    def test_deterministic(self, make):
        a = make(20, 10, seed=5)
        b = make(20, 10, seed=5)
        assert a.to_set_system() == b.to_set_system()

    def test_set_system_round_trip(self, make):
        inst = make(25, 15, seed=2)
        system = inst.to_set_system()
        assert system.n == inst.n
        assert system.m == inst.m
        assert system.is_feasible()


class TestFatTriangleInstances:
    def test_triangles_are_actually_fat(self):
        inst = random_fat_triangle_instance(20, 30, seed=3)
        for shape in inst.shapes:
            assert shape.is_fat(3.0), shape
