"""Tests for Max k-Cover solvers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxcover import (
    StreamingMaxCover,
    exact_max_coverage,
    greedy_max_coverage,
)
from repro.setsystem import SetSystem
from repro.streaming import SetStream
from repro.workloads import planted_instance, uniform_random_instance


class TestGreedyMaxCoverage:
    def test_budget_respected(self, uniform_small):
        assert len(greedy_max_coverage(uniform_small, 3)) <= 3

    def test_zero_budget(self, uniform_small):
        assert greedy_max_coverage(uniform_small, 0) == []

    def test_full_budget_covers_everything_coverable(self, tiny_system):
        cover = greedy_max_coverage(tiny_system, tiny_system.m)
        assert tiny_system.covered_by(cover) == tiny_system.universe

    def test_stops_when_no_gain(self):
        system = SetSystem(2, [[0, 1], [0], [1]])
        assert greedy_max_coverage(system, 3) == [0]

    def test_picks_best_single_set(self):
        system = SetSystem(5, [[0], [0, 1, 2], [3, 4]])
        assert greedy_max_coverage(system, 1) == [1]

    def test_negative_budget(self, tiny_system):
        with pytest.raises(ValueError):
            greedy_max_coverage(tiny_system, -1)


class TestExactMaxCoverage:
    def test_optimal_pairs(self):
        system = SetSystem(6, [[0, 1, 2], [2, 3], [3, 4, 5], [0, 5]])
        best = exact_max_coverage(system, 2)
        assert len(system.covered_by(best)) == 6

    def test_budget_larger_than_family(self, tiny_system):
        best = exact_max_coverage(tiny_system, 100)
        assert len(best) == tiny_system.m

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=3),
    )
    def test_greedy_within_1_minus_1_over_e(self, seed, k):
        system = uniform_random_instance(10, 6, density=0.3, seed=seed)
        greedy_value = len(system.covered_by(greedy_max_coverage(system, k)))
        exact_value = len(system.covered_by(exact_max_coverage(system, k)))
        assert greedy_value >= (1 - 1 / math.e) * exact_value - 1e-9


class TestStreamingMaxCover:
    def test_single_pass(self, uniform_small):
        stream = SetStream(uniform_small)
        result = StreamingMaxCover(k=3).solve(stream)
        assert result.passes == 1
        assert len(result.selection) <= 3

    def test_coverage_reported(self, uniform_small):
        stream = SetStream(uniform_small)
        result = StreamingMaxCover(k=3).solve(stream)
        true_coverage = len(uniform_small.covered_by(result.selection))
        assert result.extra["coverage"] == true_coverage

    def test_competitive_with_greedy_on_planted(self):
        planted = planted_instance(n=80, m=50, opt=4, seed=9)
        k = 4
        stream = SetStream(planted.system)
        streaming = StreamingMaxCover(k=k).solve(stream)
        offline = greedy_max_coverage(planted.system, k)
        offline_value = len(planted.system.covered_by(offline))
        streamed_value = streaming.extra["coverage"]
        assert streamed_value >= 0.4 * offline_value

    def test_swap_improves_on_early_junk(self):
        # Stream order: tiny sets first, a giant set last; the buffer must
        # swap junk out for the giant set.
        system = SetSystem(10, [[0], [1], list(range(10))])
        result = StreamingMaxCover(k=1).solve(SetStream(system))
        assert result.selection == [2]
        assert result.extra["coverage"] == 10

    def test_memory_bounded_by_buffer(self):
        system = uniform_random_instance(60, 100, density=0.2, seed=10)
        result = StreamingMaxCover(k=2).solve(SetStream(system))
        # Buffer holds at most k sets at a time (plus ids).
        assert result.peak_memory_words <= 2 * (60 + 1) + 60

    def test_k_validated(self):
        with pytest.raises(ValueError):
            StreamingMaxCover(k=0)
