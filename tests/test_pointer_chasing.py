"""Tests for pointer-chasing problems (Definitions 6.1-6.3)."""

from __future__ import annotations

import pytest

from repro.communication import (
    EqualPointerChasing,
    PointerChasing,
    is_r_non_injective,
    random_equal_pointer_chasing,
    random_pointer_chasing,
)


class TestRNonInjectivity:
    def test_injective_function(self):
        assert not is_r_non_injective((0, 1, 2, 3), 2)

    def test_detects_collision(self):
        assert is_r_non_injective((0, 0, 2, 3), 2)

    def test_threshold(self):
        f = (1, 1, 1, 0)
        assert is_r_non_injective(f, 3)
        assert not is_r_non_injective(f, 4)

    def test_r_one_always_true_for_nonempty(self):
        assert is_r_non_injective((0,), 1)

    def test_bad_r(self):
        with pytest.raises(ValueError):
            is_r_non_injective((0,), 0)


class TestPointerChasing:
    def test_evaluation_order(self):
        # f_1 = +1 mod 4, f_2 = *2 mod 4; f_1(f_2(1)) = f_1(2) = 3.
        f1 = tuple((i + 1) % 4 for i in range(4))
        f2 = tuple((2 * i) % 4 for i in range(4))
        chain = PointerChasing(4, (f1, f2))
        assert chain.evaluate(start=1) == 3

    def test_identity_chain(self):
        identity = tuple(range(5))
        chain = PointerChasing(5, (identity, identity, identity))
        for start in range(5):
            assert chain.evaluate(start) == start

    def test_domain_validated(self):
        with pytest.raises(ValueError):
            PointerChasing(3, ((0, 1),))
        with pytest.raises(ValueError):
            PointerChasing(3, ((0, 1, 5),))

    def test_max_non_injectivity(self):
        chain = PointerChasing(4, ((0, 0, 0, 1), (0, 1, 2, 3)))
        assert chain.max_non_injectivity() == 3


class TestEqualPointerChasing:
    def test_equal_chains(self):
        identity = tuple(range(4))
        a = PointerChasing(4, (identity,))
        b = PointerChasing(4, (identity,))
        assert EqualPointerChasing(a, b).output()

    def test_unequal_chains(self):
        identity = tuple(range(4))
        shift = tuple((i + 1) % 4 for i in range(4))
        assert not EqualPointerChasing(
            PointerChasing(4, (identity,)), PointerChasing(4, (shift,))
        ).output()

    def test_limited_promise_forces_one(self):
        constant = (2, 2, 2, 2)
        shift = tuple((i + 1) % 4 for i in range(4))
        epc = EqualPointerChasing(
            PointerChasing(4, (constant,)), PointerChasing(4, (shift,)), r=3
        )
        assert epc.output()  # constant is 3-non-injective -> output 1

    def test_mismatched_instances_rejected(self):
        with pytest.raises(ValueError):
            EqualPointerChasing(
                PointerChasing(3, (tuple(range(3)),)),
                PointerChasing(4, (tuple(range(4)),)),
            )


class TestGenerators:
    def test_random_chain_shape(self):
        chain = random_pointer_chasing(10, 3, seed=0)
        assert chain.n == 10 and chain.p == 3

    def test_deterministic(self):
        assert random_pointer_chasing(8, 2, seed=1) == random_pointer_chasing(
            8, 2, seed=1
        )

    def test_random_epc(self):
        epc = random_equal_pointer_chasing(8, 2, r=4, seed=2)
        assert isinstance(epc.output(), bool)
