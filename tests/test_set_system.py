"""Tests for the SetSystem data structure."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.setsystem import SetSystem


def small_systems():
    """Hypothesis strategy for small random set systems."""
    return st.integers(min_value=1, max_value=12).flatmap(
        lambda n: st.lists(
            st.sets(st.integers(min_value=0, max_value=n - 1)),
            min_size=0,
            max_size=10,
        ).map(lambda sets: SetSystem(n, sets))
    )


class TestConstruction:
    def test_basic(self, tiny_system):
        assert tiny_system.n == 4
        assert tiny_system.m == 5

    def test_out_of_range_element(self):
        with pytest.raises(ValueError):
            SetSystem(3, [[0, 3]])

    def test_negative_element(self):
        with pytest.raises(ValueError):
            SetSystem(3, [[-1]])

    def test_empty_instance(self):
        system = SetSystem(0, [])
        assert system.n == 0 and system.m == 0
        assert system.is_cover([])

    def test_duplicate_sets_kept(self):
        system = SetSystem(2, [[0], [0]])
        assert system.m == 2

    def test_equality_and_hash(self):
        a = SetSystem(3, [[0], [1, 2]])
        b = SetSystem(3, [[0], [2, 1]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != SetSystem(3, [[1, 2], [0]])  # order matters

    def test_repr(self, tiny_system):
        assert "SetSystem" in repr(tiny_system)


class TestQueries:
    def test_is_cover(self, tiny_system):
        assert tiny_system.is_cover([0, 1])
        assert not tiny_system.is_cover([0])

    def test_covered_by(self, tiny_system):
        assert tiny_system.covered_by([0, 2]) == frozenset({0, 1, 2})

    def test_uncovered_by(self, tiny_system):
        assert tiny_system.uncovered_by([0]) == frozenset({2, 3})

    def test_is_feasible(self, tiny_system, infeasible_system):
        assert tiny_system.is_feasible()
        assert not infeasible_system.is_feasible()

    def test_element_frequency(self, tiny_system):
        assert tiny_system.element_frequency(0) == 2
        assert tiny_system.element_frequency(3) == 2
        with pytest.raises(ValueError):
            tiny_system.element_frequency(4)

    def test_sizes(self, tiny_system):
        assert tiny_system.max_set_size() == 2
        assert tiny_system.sparsity() == 2
        assert tiny_system.total_size() == 8

    def test_masks(self, tiny_system):
        masks = tiny_system.masks()
        assert masks[0] == 0b0011
        assert masks[1] == 0b1100


class TestTransformations:
    def test_restrict_elements_renumbers(self, tiny_system):
        sub = tiny_system.restrict_elements([1, 3])
        assert sub.n == 2
        # set 0 = {0,1} -> {1} -> renumbered {0}; set 1 = {2,3} -> {3} -> {1}
        assert sub[0] == frozenset({0})
        assert sub[1] == frozenset({1})

    def test_restrict_keeps_set_count(self, tiny_system):
        assert tiny_system.restrict_elements([0]).m == tiny_system.m

    def test_restrict_rejects_bad_elements(self, tiny_system):
        with pytest.raises(ValueError):
            tiny_system.restrict_elements([9])

    def test_subfamily(self, tiny_system):
        sub = tiny_system.subfamily([1, 0])
        assert sub[0] == tiny_system[1]
        assert sub[1] == tiny_system[0]

    def test_residual(self, tiny_system):
        residual = tiny_system.residual([0])  # covers {0,1}; left {2,3}
        assert residual.n == 2
        assert residual.is_feasible()

    def test_without_dominated(self):
        system = SetSystem(4, [[0, 1], [0], [2, 3], [2, 3], [1]])
        pruned, keep = system.without_dominated_sets()
        assert 1 not in keep  # {0} subset of {0,1}
        assert 4 not in keep  # {1} subset of {0,1}
        # exactly one of the duplicate {2,3} survives
        assert sum(1 for i in keep if system[i] == frozenset({2, 3})) == 1
        assert pruned.is_feasible()


@given(small_systems())
def test_cover_by_all_sets_iff_feasible(system):
    assert system.is_cover(range(system.m)) == system.is_feasible()


@given(small_systems())
def test_dominance_pruning_preserves_coverage(system):
    pruned, keep = system.without_dominated_sets()
    assert pruned.covered_by(range(pruned.m)) == system.covered_by(range(system.m))
    # Pruned family sets are exactly the kept originals, in order.
    assert [pruned[i] for i in range(pruned.m)] == [system[i] for i in keep]


@given(small_systems(), st.sets(st.integers(min_value=0, max_value=11)))
def test_restrict_projects_every_set(system, keep):
    keep = {e for e in keep if e < system.n}
    if not keep:
        return
    ordered = sorted(keep)
    sub = system.restrict_elements(ordered)
    renumber = {old: new for new, old in enumerate(ordered)}
    for original, projected in zip(system.sets, sub.sets):
        assert projected == frozenset(renumber[e] for e in original if e in keep)
