"""Tests for the Figure 1.1 baseline algorithms."""

from __future__ import annotations

import math

import pytest

from repro.baselines import (
    ChakrabartiWirth,
    DemaineEtAl,
    EmekRosen,
    MultiPassGreedy,
    SahaGetoor,
    StoreAllGreedy,
    ThresholdGreedy,
)
from repro.offline import greedy_cover
from repro.setsystem import SetSystem
from repro.streaming import SetStream
from repro.workloads import (
    planted_instance,
    threshold_trap_instance,
    uniform_random_instance,
)

ALL_BASELINES = [
    StoreAllGreedy(),
    MultiPassGreedy(),
    ThresholdGreedy(),
    EmekRosen(),
    ChakrabartiWirth(passes=2),
    SahaGetoor(),
    DemaineEtAl(delta=0.5, k=4, seed=0),
]


@pytest.mark.parametrize("algo", ALL_BASELINES, ids=lambda a: a.name)
def test_all_baselines_produce_covers(algo):
    planted = planted_instance(n=80, m=60, opt=4, seed=2)
    stream = SetStream(planted.system)
    result = algo.solve(stream)
    assert stream.verify_solution(result.selection), result.algorithm
    assert result.feasible


@pytest.mark.parametrize("algo", ALL_BASELINES, ids=lambda a: a.name)
def test_all_baselines_report_pass_counts(algo):
    planted = planted_instance(n=40, m=30, opt=3, seed=4)
    stream = SetStream(planted.system)
    result = algo.solve(stream)
    assert result.passes == stream.passes
    assert result.passes >= 1


class TestStoreAllGreedy:
    def test_single_pass(self, uniform_small):
        stream = SetStream(uniform_small)
        result = StoreAllGreedy().solve(stream)
        assert result.passes == 1

    def test_matches_offline_greedy(self, uniform_small):
        result = StoreAllGreedy().solve(SetStream(uniform_small))
        assert result.solution_size == len(greedy_cover(uniform_small))

    def test_memory_is_total_input_size(self, uniform_small):
        result = StoreAllGreedy().solve(SetStream(uniform_small))
        assert result.peak_memory_words >= uniform_small.total_size()


class TestMultiPassGreedy:
    def test_one_pass_per_pick(self, tiny_system):
        stream = SetStream(tiny_system)
        result = MultiPassGreedy().solve(stream)
        assert result.passes == result.solution_size
        assert result.solution_size == 2

    def test_matches_offline_greedy_size(self, uniform_small):
        result = MultiPassGreedy().solve(SetStream(uniform_small))
        assert result.solution_size == len(greedy_cover(uniform_small))

    def test_memory_linear_in_n(self, uniform_small):
        result = MultiPassGreedy().solve(SetStream(uniform_small))
        assert result.peak_memory_words <= 3 * uniform_small.n

    def test_max_passes_cutoff(self, uniform_small):
        result = MultiPassGreedy(max_passes=1).solve(SetStream(uniform_small))
        assert result.passes == 1

    def test_infeasible(self, infeasible_system):
        result = MultiPassGreedy().solve(SetStream(infeasible_system))
        assert not result.feasible


class TestThresholdGreedy:
    def test_log_passes(self):
        system = uniform_random_instance(128, 100, density=0.08, seed=1)
        stream = SetStream(system)
        result = ThresholdGreedy().solve(stream)
        assert result.passes <= math.ceil(math.log2(128)) + 1
        assert stream.verify_solution(result.selection)

    def test_approximation_logarithmic_on_planted(self):
        planted = planted_instance(n=128, m=90, opt=4, seed=8)
        result = ThresholdGreedy().solve(SetStream(planted.system))
        assert result.solution_size <= 4 * planted.opt * math.log2(128)

    def test_shrink_validation(self):
        with pytest.raises(ValueError):
            ThresholdGreedy(shrink=1.0)


class TestEmekRosen:
    def test_single_pass(self, uniform_small):
        stream = SetStream(uniform_small)
        result = EmekRosen().solve(stream)
        assert result.passes == 1
        assert stream.verify_solution(result.selection)

    def test_sqrt_bound_on_planted(self):
        planted = planted_instance(n=100, m=60, opt=4, seed=12)
        result = EmekRosen().solve(SetStream(planted.system))
        assert result.solution_size <= 2 * math.sqrt(100) * planted.opt

    def test_memory_linear(self):
        planted = planted_instance(n=100, m=60, opt=4, seed=12)
        result = EmekRosen().solve(SetStream(planted.system))
        assert result.peak_memory_words <= 4 * 100

    def test_trap_instance_overpays(self):
        """Decoys below sqrt(n) force the pointer fallback; the optimum 2 is
        missed — the behaviour the ER14 lower bound formalizes."""
        system = threshold_trap_instance(64, seed=3)
        stream = SetStream(system)
        result = EmekRosen().solve(stream)
        assert stream.verify_solution(result.selection)
        assert result.solution_size > 2


class TestChakrabartiWirth:
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_p_passes(self, p):
        system = uniform_random_instance(80, 60, density=0.1, seed=2)
        stream = SetStream(system)
        result = ChakrabartiWirth(passes=p).solve(stream)
        assert result.passes <= p
        assert stream.verify_solution(result.selection)

    def test_more_passes_do_not_hurt_much(self):
        planted = planted_instance(n=256, m=120, opt=4, seed=6)
        sizes = {}
        for p in (1, 3):
            result = ChakrabartiWirth(passes=p).solve(SetStream(planted.system))
            sizes[p] = result.solution_size
        assert sizes[3] <= sizes[1]

    def test_bound_formula_reported(self):
        system = uniform_random_instance(64, 40, density=0.1, seed=2)
        result = ChakrabartiWirth(passes=2).solve(SetStream(system))
        assert result.extra["approx_bound"] == pytest.approx(3 * 64 ** (1 / 3))

    def test_passes_validated(self):
        with pytest.raises(ValueError):
            ChakrabartiWirth(passes=0)


class TestSahaGetoor:
    def test_produces_cover_with_log_passes(self):
        system = uniform_random_instance(64, 50, density=0.1, seed=3)
        stream = SetStream(system)
        result = SahaGetoor().solve(stream)
        assert stream.verify_solution(result.selection)
        assert result.passes <= math.ceil(math.log2(64)) + 2

    def test_memory_superlinear_cache(self):
        """SG09's signature: the candidate cache stores whole sets, so the
        peak is well above the O(n) of threshold greedy on the same input."""
        system = uniform_random_instance(64, 120, density=0.25, seed=4)
        sg = SahaGetoor().solve(SetStream(system))
        tg = ThresholdGreedy().solve(SetStream(system))
        assert sg.peak_memory_words > 2 * tg.peak_memory_words


class TestDemaineEtAl:
    def test_with_known_k(self):
        planted = planted_instance(n=60, m=45, opt=4, seed=7)
        stream = SetStream(planted.system)
        result = DemaineEtAl(delta=0.5, k=4, seed=1).solve(stream)
        assert stream.verify_solution(result.selection)

    def test_doubling_restart_without_k(self):
        planted = planted_instance(n=60, m=45, opt=4, seed=7)
        stream = SetStream(planted.system)
        result = DemaineEtAl(delta=0.5, seed=1).solve(stream)
        assert stream.verify_solution(result.selection)
        assert result.best_k >= 1

    def test_pass_count_grows_as_delta_shrinks(self):
        """The exponential-in-1/delta recursion: with the sampling constant
        small enough to force recursion, passes grow sharply."""
        planted = planted_instance(n=240, m=120, opt=6, seed=9)
        passes = {}
        for delta in (1.0, 0.34):
            stream = SetStream(planted.system)
            result = DemaineEtAl(
                delta=delta, k=6, seed=2, sample_constant=0.05
            ).solve(stream)
            passes[delta] = result.passes
        assert passes[0.34] > passes[1.0]

    def test_delta_validated(self):
        with pytest.raises(ValueError):
            DemaineEtAl(delta=0.0)
