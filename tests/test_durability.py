"""Crash-safety of the shard store (DESIGN.md §12, ISSUE 8).

Three layers of assertion:

* **Crash matrix** — every registered ``REPRO_CRASHPOINT`` is fired in a
  subprocess (``tests/crashpoint_driver.py``) running exactly one
  storage operation; the parent asserts the process died with the
  sentinel exit code and that the repository reopens to one of the two
  legal states (the operation fully absent or fully applied — never a
  hybrid), that ``fsck --repair`` returns it to a zero-finding state,
  and that the interrupted operation can then be cleanly redone.
* **ENOSPC aborts** — the same injection points in ``mode=error`` raise
  ``OSError`` in-process; writers must abort cleanly (no partial
  generation, no stuck lock), and a crashed compaction's staging
  directory must be refused by later writers unless forced.
* **fsck taxonomy** — every corruption the storage layer can detect is
  built as a fixture and asserted to surface as its typed finding code.
"""

import json
import multiprocessing
import os
import shutil
import subprocess
import sys
import warnings
import zlib
from pathlib import Path

import pytest

from repro.dynamic import CheckpointError, DynamicCover, StaleCheckpointError
from repro.setsystem import SetSystem, save
from repro.setsystem.deltas import (
    DeltaShardWriter,
    _chain_checksum,
    apply_delta,
    chain_token,
    compact,
    open_repository,
)
from repro.setsystem.durability import (
    CRASHPOINT_EXIT_CODE,
    CRASHPOINTS,
    COMPACT_INTENT_NAME,
    EPOCH_FILE_NAME,
    StagingLock,
    active_leases,
    crashpoint,
    current_epoch,
    fsck_repository,
    leases_dir_for,
    reclaim_retired,
    retired_dir_for,
    staging_dir_for,
    staging_is_live,
    staging_lock_for,
    write_compact_intent,
)
from repro.setsystem.shards import (
    DELTA_MANIFEST_NAME,
    DELTAS_DIRNAME,
    InterruptedCompactionError,
    MANIFEST_NAME,
    RepositoryBusyError,
    ShardedRepository,
    ShardFormatError,
    StaleStagingError,
    write_shards,
)

DRIVER = Path(__file__).with_name("crashpoint_driver.py")

BASE_ROWS = [[0, 1], [2, 3], [4, 5], [6, 7], [1, 2], [5, 6]]
BATCH_1 = [{"op": "insert", "elements": [0, 3, 6]}, {"op": "delete", "id": 4}]
BATCH_2 = [{"op": "insert", "elements": [1, 4, 7]}, {"op": "delete", "id": 0}]


def _system() -> SetSystem:
    return SetSystem(8, BASE_ROWS)


def _rows(root) -> "list[list[int]]":
    with open_repository(root) as repo:
        return [sorted(row) for row in repo.iter_rows()]


def _tree_bytes(root) -> "dict[str, bytes]":
    root = Path(root)
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def _run_driver(args, crash=None, mode="exit"):
    env = os.environ.copy()
    if crash is not None:
        env["REPRO_CRASHPOINT"] = (
            crash if mode == "exit" else f"{crash},mode={mode}"
        )
    return subprocess.run(
        [sys.executable, str(DRIVER), *map(str, args)],
        env=env, capture_output=True, text=True,
    )


def _build_chain(tmp_path, batches=(BATCH_1, BATCH_2)):
    root = write_shards(tmp_path / "root", _system(), chunk_rows=2)
    for batch in batches:
        apply_delta(root, batch)
    return root


def _clone(root, dest):
    """Copy a (possibly crashed) repository *with* its staging sibling."""
    dest = Path(shutil.copytree(root, dest))
    staging = staging_dir_for(root)
    if staging.is_dir():
        shutil.copytree(staging, staging_dir_for(dest))
    return dest


def _assert_clean(root, *, repair_first=False):
    if repair_first:
        fsck_repository(root, repair=True)
    report = fsck_repository(root)
    assert report.ok, f"fsck findings after repair: {report.codes()}"


# ----------------------------------------------------------------------
# Registry sanity
# ----------------------------------------------------------------------
def test_crashpoint_registry_is_closed():
    assert len(set(CRASHPOINTS)) == len(CRASHPOINTS)
    with pytest.raises(RuntimeError, match="unregistered crashpoint"):
        crashpoint("no.such.point")


def test_registered_crashpoints_are_inert_without_env(tmp_path):
    for name in CRASHPOINTS:
        crashpoint(name)  # must be a no-op, not an exit


# ----------------------------------------------------------------------
# Crash matrix: base writer
# ----------------------------------------------------------------------
@pytest.mark.parametrize("crash", ["writer.shard-flush", "writer.manifest"])
def test_create_crash_never_leaves_openable_partial(tmp_path, crash):
    save(_system(), tmp_path / "system.json")
    dest = tmp_path / "dest"
    proc = _run_driver(
        ["create", dest, tmp_path / "system.json", 2], crash=crash
    )
    assert proc.returncode == CRASHPOINT_EXIT_CODE, proc.stderr
    # The manifest is the commit point: it must not exist, so an open
    # can never see a half-written family.
    assert not (dest / MANIFEST_NAME).exists()
    report = fsck_repository(dest)
    assert not report.ok
    assert report.codes() in (["missing-repository"], ["missing-manifest"])
    # Repair clears the debris; the interrupted write can then be redone.
    fsck_repository(dest, repair=True)
    proc = _run_driver(["create", dest, tmp_path / "system.json", 2])
    assert proc.returncode == 0, proc.stderr
    reference = write_shards(tmp_path / "reference", _system(), chunk_rows=2)
    assert _tree_bytes(dest) == _tree_bytes(reference)
    _assert_clean(dest)


# ----------------------------------------------------------------------
# Crash matrix: delta append
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "crash", ["writer.shard-flush", "writer.manifest", "delta.staged"]
)
def test_delta_crash_is_invisible_until_committed(tmp_path, crash):
    root = _build_chain(tmp_path, batches=(BATCH_1,))
    pre = _rows(root)
    twin = Path(shutil.copytree(root, tmp_path / "twin"))
    apply_delta(twin, BATCH_2)
    post = _rows(twin)

    ops = tmp_path / "ops.json"
    ops.write_text(json.dumps(BATCH_2))
    proc = _run_driver(["delta", root, ops], crash=crash)
    assert proc.returncode == CRASHPOINT_EXIT_CODE, proc.stderr
    # delta.json is the commit point; every injected crash precedes it,
    # so the reopened chain must equal the pre state (and never a
    # hybrid).  The two-legal-states form keeps the assertion honest if
    # a post-commit crashpoint is ever added.
    assert _rows(root) in (pre, post)
    assert _rows(root) == pre
    report = fsck_repository(root)
    assert all(f.repairable for f in report.findings), report.codes()
    _assert_clean(root, repair_first=True)
    # The batch still applies cleanly after repair, and lands the chain
    # byte-identical to the twin that never crashed.
    apply_delta(root, BATCH_2)
    assert _rows(root) == post
    assert _tree_bytes(root) == _tree_bytes(twin)


# ----------------------------------------------------------------------
# Crash matrix: in-place compaction
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "crash",
    [
        "writer.shard-flush",
        "writer.manifest",
        "compact.begin",
        "compact.staged",
        "compact.intent",
        "compact.shards-moved",
        "compact.manifest",
    ],
)
def test_compact_crash_reopens_to_exact_rows(tmp_path, crash):
    root = _build_chain(tmp_path)
    pre = _rows(root)
    reference = Path(shutil.copytree(root, tmp_path / "reference"))
    compact(reference)

    proc = _run_driver(["compact", root], crash=crash)
    assert proc.returncode == CRASHPOINT_EXIT_CODE, proc.stderr

    # Route 1: plain reopen.  open_repository rolls a journaled
    # compaction forward (or ignores pre-intent debris) on its own.
    route1 = _clone(root, tmp_path / "route1")
    assert _rows(route1) == pre
    assert not (route1 / COMPACT_INTENT_NAME).exists()

    # Route 2: fsck --repair, then a clean compaction must land the
    # repository byte-identical to one that never crashed.
    report = fsck_repository(root)
    assert all(f.repairable for f in report.findings), report.codes()
    _assert_clean(root, repair_first=True)
    assert _rows(root) == pre
    compact(root)
    assert _tree_bytes(root) == _tree_bytes(reference)


def test_lost_staging_refuses_instead_of_dropping_deltas(tmp_path):
    """A journaled compaction whose staging vanished must refuse loudly.

    Rolling forward without the staged files would keep the old base
    while deleting the delta chain — silent data loss.  The refusal
    leaves the chain fully readable once the journal is abandoned.
    """
    root = _build_chain(tmp_path)
    pre = _rows(root)
    proc = _run_driver(["compact", root], crash="compact.intent")
    assert proc.returncode == CRASHPOINT_EXIT_CODE, proc.stderr
    shutil.rmtree(staging_dir_for(root))
    with pytest.raises(ShardFormatError, match="staging directory"):
        open_repository(root)
    assert (root / DELTAS_DIRNAME).is_dir()
    report = fsck_repository(root, repair=True)
    assert "intent-unresolvable" in report.codes()
    assert (root / DELTAS_DIRNAME).is_dir()
    # Abandoning the journal restores normal operation, with every row.
    (root / COMPACT_INTENT_NAME).unlink()
    assert _rows(root) == pre
    compact(root)
    assert _rows(root) == pre
    _assert_clean(root)


def test_compact_crash_after_intent_is_rolled_forward(tmp_path):
    """Past the intent journal the *new* repository is the legal state."""
    root = _build_chain(tmp_path)
    proc = _run_driver(["compact", root], crash="compact.shards-moved")
    assert proc.returncode == CRASHPOINT_EXIT_CODE, proc.stderr
    assert (root / COMPACT_INTENT_NAME).is_file()
    # A raw base open must refuse the half-replaced hybrid...
    with pytest.raises(InterruptedCompactionError):
        ShardedRepository(root, base_only=True)
    # ...while the choke point recovers and serves the compacted repo.
    with open_repository(root) as repo:
        assert repo.pending_deltas == 0
    assert not (root / COMPACT_INTENT_NAME).exists()
    assert not (root / DELTAS_DIRNAME).exists()


@pytest.mark.parametrize("crash", ["writer.shard-flush", "writer.manifest"])
def test_compact_output_crash_leaves_source_untouched(tmp_path, crash):
    root = _build_chain(tmp_path)
    before = _tree_bytes(root)
    dest = tmp_path / "dest"
    proc = _run_driver(["compact-output", root, dest], crash=crash)
    assert proc.returncode == CRASHPOINT_EXIT_CODE, proc.stderr
    assert _tree_bytes(root) == before
    assert not (dest / MANIFEST_NAME).exists()
    _assert_clean(root)


# ----------------------------------------------------------------------
# Crash matrix: online compaction (ISSUE 9)
# ----------------------------------------------------------------------
def test_online_staging_crash_is_refused_then_repaired(tmp_path):
    """Crash before the swing: the staging is debris, the chain intact.

    ``compact.online-staged`` fires after the lock-free staging phase but
    before the repository lock / intent journal — the crashed compactor's
    staging directory plus its (now unheld) liveness marker are exactly
    the stale-staging shape later writers must refuse until repaired.
    """
    root = _build_chain(tmp_path)
    pre = _rows(root)
    reference = Path(shutil.copytree(root, tmp_path / "reference"))
    compact(reference, online=True)

    proc = _run_driver(["compact-online", root], crash="compact.online-staged")
    assert proc.returncode == CRASHPOINT_EXIT_CODE, proc.stderr
    assert staging_dir_for(root).is_dir()
    assert staging_lock_for(root).exists()
    assert not staging_is_live(root)  # the crash dropped the flock
    # Dead staging is loud for compactors, invisible to readers.
    with pytest.raises(StaleStagingError):
        compact(root, online=True)
    assert _rows(root) == pre
    report = fsck_repository(root)
    assert "stale-staging" in report.codes()
    assert all(f.repairable for f in report.findings), report.codes()
    report = fsck_repository(root, repair=True)
    assert report.ok, report.codes()
    assert not staging_dir_for(root).exists()
    assert not staging_lock_for(root).exists()
    # The redo lands the root byte-identical to a twin that never crashed.
    compact(root, online=True)
    assert _rows(root) == pre
    assert _tree_bytes(root) == _tree_bytes(reference)
    _assert_clean(root)


@pytest.mark.parametrize(
    "crash", ["compact.swing", "compact.retire", "lease.drain"]
)
def test_online_compact_crash_recovers_on_plain_reopen(tmp_path, crash):
    """Past the intent journal the fold is committed; a crash in the
    swing critical section (``compact.swing``), the retire tail
    (``compact.retire``) or the post-swing lease-drain reclaim
    (``lease.drain``) must roll forward on a plain reopen and come back
    byte-identical to a never-crashed twin after ``fsck --repair``."""
    root = _build_chain(tmp_path)
    pre = _rows(root)
    reference = Path(shutil.copytree(root, tmp_path / "reference"))
    compact(reference, online=True)

    proc = _run_driver(["compact-online", root], crash=crash)
    assert proc.returncode == CRASHPOINT_EXIT_CODE, proc.stderr

    # Route 1: plain reopen.  The journal (if still present) is rolled
    # forward by open_repository itself; rows are exactly the pre-fold
    # view either way.
    route1 = _clone(root, tmp_path / "route1")
    assert _rows(route1) == pre
    assert not (route1 / COMPACT_INTENT_NAME).exists()

    # Route 2: fsck --repair resolves the journal, the orphaned staging
    # marker and any unreclaimed retired generation in one pass.
    report = fsck_repository(root)
    assert all(f.repairable for f in report.findings), report.codes()
    _assert_clean(root, repair_first=True)
    assert _rows(root) == pre
    with open_repository(root) as repo:
        assert repo.pending_deltas == 0
    assert _tree_bytes(root) == _tree_bytes(reference)


def test_lease_drain_crash_leaves_retired_debris_finding(tmp_path):
    """A crash mid-reclaim leaves the superseded generation parked; it
    surfaces as the repairable ``retired-debris`` finding, never as data
    loss or a wedged repository."""
    root = _build_chain(tmp_path)
    proc = _run_driver(["compact-online", root], crash="lease.drain")
    assert proc.returncode == CRASHPOINT_EXIT_CODE, proc.stderr
    # The fold itself committed; only the reclaim was interrupted.
    assert retired_dir_for(root, 0).is_dir()
    assert current_epoch(root) == 1
    report = fsck_repository(root)
    assert "retired-debris" in report.codes()
    report = fsck_repository(root, repair=True)
    assert report.ok, report.codes()
    assert any("reclaimed the retired generation" in note
               for note in report.repaired)
    assert not retired_dir_for(root).exists()


# ----------------------------------------------------------------------
# Crash matrix: stats backfill and DynamicCover checkpoints
# ----------------------------------------------------------------------
def _downgrade_manifest(path):
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    manifest["schema"] = "repro.shards/v2"
    manifest.pop("stats_crc32", None)
    for meta in manifest["shards"]:
        meta.pop("stats", None)
    (path / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2) + "\n")


def test_backfill_crash_preserves_old_manifest(tmp_path):
    root = write_shards(tmp_path / "root", _system(), chunk_rows=2)
    _downgrade_manifest(root)
    before = (root / MANIFEST_NAME).read_bytes()
    proc = _run_driver(["backfill", root], crash="backfill.manifest")
    assert proc.returncode == CRASHPOINT_EXIT_CODE, proc.stderr
    assert (root / MANIFEST_NAME).read_bytes() == before
    _assert_clean(root)
    proc = _run_driver(["backfill", root])
    assert proc.returncode == 0, proc.stderr
    with ShardedRepository(root, base_only=True, verify=True) as repo:
        assert repo.has_stats
    _assert_clean(root)


def test_checkpoint_crash_preserves_previous_checkpoint(tmp_path):
    root = _build_chain(tmp_path, batches=())
    ckpt = tmp_path / "cover.ckpt"
    with open_repository(root) as repo:
        DynamicCover(repo.n, enumerate(repo.iter_rows())).checkpoint(
            ckpt, root=root
        )
    before = ckpt.read_bytes()
    ops = tmp_path / "ops.json"
    ops.write_text(json.dumps([{"op": "insert", "elements": [0, 7]}]))
    proc = _run_driver(
        ["checkpoint", root, ckpt, ops], crash="checkpoint.staged"
    )
    assert proc.returncode == CRASHPOINT_EXIT_CODE, proc.stderr
    assert ckpt.read_bytes() == before
    assert DynamicCover.restore(ckpt, root=root).m == len(BASE_ROWS)
    proc = _run_driver(["checkpoint", root, ckpt, ops])
    assert proc.returncode == 0, proc.stderr
    assert DynamicCover.restore(ckpt, root=root).m == len(BASE_ROWS) + 1


# ----------------------------------------------------------------------
# ENOSPC (mode=error): writers abort cleanly, locks release
# ----------------------------------------------------------------------
def test_write_shards_aborts_on_midwrite_enospc(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CRASHPOINT", "writer.shard-flush,mode=error")
    dest = tmp_path / "dest"
    with pytest.raises(OSError):
        write_shards(dest, _system(), chunk_rows=2)
    # Abort removed everything it created — no corpse for a later open.
    assert not dest.exists()
    monkeypatch.delenv("REPRO_CRASHPOINT")
    write_shards(dest, _system(), chunk_rows=2)
    _assert_clean(dest)


def test_apply_delta_aborts_on_midwrite_enospc(tmp_path, monkeypatch):
    root = _build_chain(tmp_path, batches=(BATCH_1,))
    before = _tree_bytes(root)
    monkeypatch.setenv("REPRO_CRASHPOINT", "delta.staged,mode=error")
    with pytest.raises(OSError):
        apply_delta(root, BATCH_2)
    assert _tree_bytes(root) == before
    monkeypatch.delenv("REPRO_CRASHPOINT")
    # The writer's lock was released by the abort: the retry proceeds.
    apply_delta(root, BATCH_2)
    with open_repository(root) as repo:
        assert repo.pending_deltas == 2


def test_compact_enospc_leaves_stale_staging_refused_until_forced(
    tmp_path, monkeypatch
):
    root = _build_chain(tmp_path)
    pre = _rows(root)
    monkeypatch.setenv("REPRO_CRASHPOINT", "compact.staged,mode=error")
    with pytest.raises(OSError):
        compact(root)
    monkeypatch.delenv("REPRO_CRASHPOINT")
    assert staging_dir_for(root).is_dir()
    assert _rows(root) == pre
    # Stale pre-intent staging is loud, never silently consumed.
    with pytest.raises(StaleStagingError):
        apply_delta(root, BATCH_2)
    with pytest.raises(StaleStagingError):
        compact(root)
    assert fsck_repository(root).codes() == ["stale-staging"]
    compact(root, force=True)
    assert _rows(root) == pre
    assert not staging_dir_for(root).exists()
    _assert_clean(root)


# ----------------------------------------------------------------------
# Generation leases + epoch-counted retirement (ISSUE 9)
# ----------------------------------------------------------------------
def test_live_lease_pins_the_superseded_generation(tmp_path):
    root = _build_chain(tmp_path, batches=(BATCH_1,))
    assert current_epoch(root) == 0
    with open_repository(root) as reader:
        pre = [sorted(row) for row in reader.iter_rows()]
        leases = active_leases(root)
        assert [lease["epoch"] for lease in leases] == [0]
        assert leases[0]["pid"] == os.getpid()
        compact(root, online=True)
        # The fold swung the manifest and bumped the epoch, but the
        # reader's lease pins the retired epoch-0 files...
        assert current_epoch(root) == 1
        assert retired_dir_for(root, 0).is_dir()
        assert reclaim_retired(root) == []
        # ...and the already-open handle still serves the exact old view.
        assert [sorted(row) for row in reader.iter_rows()] == pre
    # close() drained the last lease and reclaimed the retired family.
    assert active_leases(root) == []
    assert not retired_dir_for(root).exists()
    assert _rows(root) == pre
    _assert_clean(root)


def test_dead_pid_lease_is_inert_and_pruned_by_repair(tmp_path):
    root = _build_chain(tmp_path, batches=(BATCH_1,))
    proc = _run_driver(["open-hold", root])
    assert proc.returncode == 0, proc.stderr
    debris = [
        p for p in leases_dir_for(root).iterdir()
        if p.name != EPOCH_FILE_NAME
    ]
    assert len(debris) == 1
    # The holder pid is gone: never a live claim, never a plain finding
    # (it self-resolves on the next reclaim pass).
    assert active_leases(root) == []
    assert fsck_repository(root).ok
    report = fsck_repository(root, repair=True)
    assert report.ok
    assert any("stale lease" in note for note in report.repaired)
    assert [
        p for p in leases_dir_for(root).iterdir()
        if p.name != EPOCH_FILE_NAME
    ] == []


def test_staging_lock_distinguishes_live_from_dead_staging(tmp_path):
    root = _build_chain(tmp_path, batches=(BATCH_1,))
    assert not staging_is_live(root)
    with StagingLock(root):
        assert staging_is_live(root)
        # A second online compactor backs off instead of clobbering.
        with pytest.raises(RepositoryBusyError, match="online compaction"):
            StagingLock(root).acquire()
    assert not staging_is_live(root)
    assert not staging_lock_for(root).exists()


def test_live_staging_admits_writers_but_not_second_compactor(tmp_path):
    """During a live online staging phase, mutators proceed (that is the
    availability win) while a competing compactor is refused — and the
    staging directory is *not* misread as crash debris."""
    root = _build_chain(tmp_path, batches=(BATCH_1,))
    staging_dir_for(root).mkdir()
    marker = StagingLock(root).acquire()
    try:
        apply_delta(root, BATCH_2)  # lands without error mid-staging
        with pytest.raises(RepositoryBusyError):
            compact(root)
        assert fsck_repository(root).ok  # live staging is not a finding
    finally:
        marker.release()
    shutil.rmtree(staging_dir_for(root))
    with open_repository(root) as repo:
        assert repo.pending_deltas == 2
    _assert_clean(root)


# ----------------------------------------------------------------------
# Advisory locking: concurrent writers fail loudly
# ----------------------------------------------------------------------
def test_concurrent_writers_and_compactors_are_refused(tmp_path):
    root = _build_chain(tmp_path, batches=(BATCH_1,))
    writer = DeltaShardWriter(root)
    try:
        with pytest.raises(RepositoryBusyError):
            apply_delta(root, BATCH_2)
        with pytest.raises(RepositoryBusyError):
            compact(root)
    finally:
        writer.abort()
    # Aborting released the lock; both operations proceed.
    apply_delta(root, BATCH_2)
    compact(root)
    _assert_clean(root)


def _hold_delta_writer(root, ready, release):
    """Child process body: hold the repository lock until released."""
    writer = DeltaShardWriter(root)
    try:
        ready.wait()  # barrier: both sides know the lock is held
        release.wait(timeout=30)
    finally:
        writer.abort()


def test_contending_process_is_named_in_the_busy_error(tmp_path):
    """Two real processes: the loser's error names the winner's pid."""
    root = _build_chain(tmp_path, batches=(BATCH_1,))
    ctx = multiprocessing.get_context("fork")
    ready = ctx.Barrier(2)
    release = ctx.Event()
    child = ctx.Process(
        target=_hold_delta_writer, args=(root, ready, release)
    )
    child.start()
    try:
        ready.wait(timeout=30)
        with pytest.raises(RepositoryBusyError) as excinfo:
            apply_delta(root, BATCH_2)
        message = str(excinfo.value)
        assert f"pid={child.pid}" in message
        assert "purpose=delta-write" in message
    finally:
        release.set()
        child.join(timeout=30)
    assert child.exitcode == 0
    # The child's abort released the lock; the retry proceeds.
    apply_delta(root, BATCH_2)
    _assert_clean(root)


def test_missing_fcntl_degrades_to_noop_with_one_warning(tmp_path, monkeypatch):
    """Platforms without fcntl get exactly one loud RuntimeWarning."""
    from repro.setsystem import durability

    root = _build_chain(tmp_path, batches=(BATCH_1,))
    monkeypatch.setattr(durability, "fcntl", None)
    monkeypatch.setattr(durability, "_warned_no_fcntl", False)
    with pytest.warns(RuntimeWarning, match="degrades to a no-op"):
        apply_delta(root, BATCH_2)
    # Second acquire in the same process: silent (warn-once), and every
    # operation still works — the formats never *require* the lock.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        compact(root)
        assert not staging_is_live(root)
    _assert_clean(root)


def test_stale_lock_file_from_a_dead_process_is_harmless(tmp_path):
    root = _build_chain(tmp_path, batches=(BATCH_1,))
    (root / ".repro-lock").touch()  # owner died without releasing
    apply_delta(root, BATCH_2)
    compact(root)
    assert not (root / ".repro-lock").exists()
    _assert_clean(root)


# ----------------------------------------------------------------------
# fsck taxonomy: every detectable corruption surfaces as its typed code
# ----------------------------------------------------------------------
def _edit_manifest(root, mutate):
    path = root / MANIFEST_NAME
    manifest = json.loads(path.read_text())
    mutate(manifest)
    path.write_text(json.dumps(manifest, indent=2) + "\n")


def _edit_chain(root, mutate, *, rechecksum=True, generation=1):
    path = root / DELTAS_DIRNAME / f"{generation:05d}" / DELTA_MANIFEST_NAME
    record = json.loads(path.read_text())
    mutate(record)
    if rechecksum:
        record["crc32"] = _chain_checksum(record)
    path.write_text(json.dumps(record, indent=2) + "\n")


def _corrupt_shard_byte(root):
    shard = sorted(root.glob("shard-*.bin"))[0]
    payload = bytearray(shard.read_bytes())
    payload[0] ^= 0xFF
    shard.write_bytes(bytes(payload))


TAXONOMY = {
    "missing-manifest": lambda root: (root / MANIFEST_NAME).unlink(),
    "manifest-unreadable": lambda root: (
        (root / MANIFEST_NAME).write_text("{not json")
    ),
    "manifest-schema": lambda root: _edit_manifest(
        root, lambda m: m.update(schema="repro.shards/v99")
    ),
    "manifest-malformed": lambda root: _edit_manifest(
        root, lambda m: m.pop("m")
    ),
    "manifest-geometry": lambda root: _edit_manifest(
        root, lambda m: m.update(words=m["words"] + 1)
    ),
    "manifest-rows": lambda root: _edit_manifest(
        root, lambda m: m.update(m=m["m"] + 1)
    ),
    "stats-missing": lambda root: _edit_manifest(
        root, lambda m: m["shards"][0].pop("stats")
    ),
    "stats-checksum": lambda root: _edit_manifest(
        root, lambda m: m.update(stats_crc32=m["stats_crc32"] ^ 1)
    ),
    "shard-missing": lambda root: sorted(root.glob("shard-*.bin"))[0].unlink(),
    "shard-size": lambda root: (
        sorted(root.glob("shard-*.bin"))[0].write_bytes(b"x")
    ),
    "shard-checksum": _corrupt_shard_byte,
    "intent-corrupt": lambda root: (
        (root / COMPACT_INTENT_NAME).write_text("{garbage")
    ),
    "stale-staging": lambda root: staging_dir_for(root).mkdir(),
    "orphan-generation": lambda root: (
        root / DELTAS_DIRNAME / "00002"
    ).mkdir(),
    "chain-foreign-file": lambda root: (
        root / DELTAS_DIRNAME / "stray.txt"
    ).touch(),
    "chain-gap": lambda root: (root / DELTAS_DIRNAME / "00001").rename(
        root / DELTAS_DIRNAME / "00002"
    ),
    "chain-unreadable": lambda root: (
        root / DELTAS_DIRNAME / "00001" / DELTA_MANIFEST_NAME
    ).write_text("{garbage"),
    "chain-schema": lambda root: _edit_chain(
        root, lambda r: r.update(schema="repro.deltas/v99")
    ),
    "chain-checksum": lambda root: _edit_chain(
        root, lambda r: r.update(inserts=r["inserts"] + 1), rechecksum=False
    ),
    "chain-malformed": lambda root: _edit_chain(
        root, lambda r: r.pop("inserts")
    ),
    "chain-geometry": lambda root: _edit_chain(
        root, lambda r: r.update(n=r["n"] + 1)
    ),
    "chain-severed": lambda root: (root / MANIFEST_NAME).write_text(
        (root / MANIFEST_NAME).read_text() + "\n"
    ),
    "chain-tombstone": lambda root: _edit_chain(
        root, lambda r: r.update(tombstones=[999])
    ),
    "retired-debris": lambda root: retired_dir_for(root, 0).mkdir(
        parents=True
    ),
}


@pytest.mark.parametrize("code", sorted(TAXONOMY))
def test_fsck_taxonomy(tmp_path, code):
    root = _build_chain(tmp_path, batches=(BATCH_1,))
    assert fsck_repository(root).ok
    TAXONOMY[code](root)
    report = fsck_repository(root)
    assert code in report.codes(), (
        f"expected {code} in {report.codes()}"
    )


def test_fsck_missing_repository(tmp_path):
    assert fsck_repository(tmp_path / "nowhere").codes() == [
        "missing-repository"
    ]


def test_fsck_shallow_skips_full_reads(tmp_path):
    root = _build_chain(tmp_path, batches=(BATCH_1,))
    _corrupt_shard_byte(root)
    assert "shard-checksum" in fsck_repository(root).codes()
    shallow = fsck_repository(root, deep=False)
    assert shallow.ok and not shallow.deep


def test_fsck_repair_never_touches_corruption(tmp_path):
    root = _build_chain(tmp_path, batches=(BATCH_1,))
    before = _tree_bytes(root)
    _corrupt_shard_byte(root)
    corrupted = _tree_bytes(root)
    report = fsck_repository(root, repair=True)
    assert report.codes() == ["shard-checksum"]
    assert report.repaired == []
    assert _tree_bytes(root) == corrupted != before


def test_fsck_repairs_orphan_generation_and_empty_chain_dir(tmp_path):
    root = _build_chain(tmp_path, batches=(BATCH_1,))
    compact(root)  # chain folded away; now fabricate debris
    (root / DELTAS_DIRNAME / "00001").mkdir(parents=True)
    report = fsck_repository(root, repair=True)
    assert report.ok and report.repaired
    assert not (root / DELTAS_DIRNAME).exists()


def test_fsck_repair_rolls_a_journaled_compaction_forward(tmp_path):
    root = _build_chain(tmp_path)
    pre = _rows(root)
    with open_repository(root) as view:
        merged = SetSystem(view.n, [sorted(r) for r in view.iter_rows()])
    staging = staging_dir_for(root)
    write_shards(staging, merged, chunk_rows=2)
    staged = sorted(p.name for p in staging.iterdir())
    old = sorted(p.name for p in root.glob("shard-*.bin")) + [MANIFEST_NAME]
    write_compact_intent(root, staged, old)
    assert fsck_repository(root).codes() == ["interrupted-compaction"]
    report = fsck_repository(root, repair=True)
    assert report.ok and report.repaired
    assert _rows(root) == pre
    with open_repository(root) as repo:
        assert repo.pending_deltas == 0


# ----------------------------------------------------------------------
# Durable DynamicCover checkpoints (tentpole e)
# ----------------------------------------------------------------------
def test_checkpoint_roundtrip_preserves_state_and_counters(tmp_path):
    dyn = DynamicCover(8, enumerate(BASE_ROWS), theta=2.0)
    dyn.insert(6, [0, 3, 6])
    dyn.delete(4)
    path = dyn.checkpoint(tmp_path / "cover.ckpt")
    twin = DynamicCover.restore(path)
    assert twin.cover == dyn.cover
    assert twin.levels() == dyn.levels()
    assert twin.stats() == dyn.stats()
    twin.verify()
    # The restored maintainer keeps maintaining, with the id high-water
    # mark intact (no stable-id reuse after restart).
    twin.insert(7, [2, 5])
    twin.delete(7)
    twin.verify()


def test_checkpoint_is_stale_once_the_chain_moves(tmp_path):
    root = _build_chain(tmp_path, batches=(BATCH_1,))
    token = chain_token(root)
    with open_repository(root) as repo:
        ids = repo.stable_ids
        dyn = DynamicCover(repo.n, zip(ids, repo.iter_rows()))
    path = dyn.checkpoint(tmp_path / "cover.ckpt", root=root)
    assert DynamicCover.restore(path, root=root).cover == dyn.cover
    apply_delta(root, BATCH_2)
    assert chain_token(root) != token
    with pytest.raises(StaleCheckpointError):
        DynamicCover.restore(path, root=root)
    # Without a root the checkpoint itself is still internally valid.
    DynamicCover.restore(path).verify()


def test_checkpoint_corruption_is_refused(tmp_path):
    dyn = DynamicCover(8, enumerate(BASE_ROWS))
    path = dyn.checkpoint(tmp_path / "cover.ckpt")
    record = json.loads(path.read_text())
    record["counters"]["updates"] += 1
    path.write_text(json.dumps(record))
    with pytest.raises(CheckpointError):
        DynamicCover.restore(path)
    path.write_text("{not json")
    with pytest.raises(CheckpointError):
        DynamicCover.restore(path)
    with pytest.raises(CheckpointError):
        DynamicCover.restore(tmp_path / "missing.ckpt")


def test_checkpoint_checksum_covers_every_field(tmp_path):
    dyn = DynamicCover(8, enumerate(BASE_ROWS))
    path = dyn.checkpoint(tmp_path / "cover.ckpt")
    record = json.loads(path.read_text())
    expected = zlib.crc32(
        json.dumps(
            {k: v for k, v in record.items() if k != "crc32"},
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
    )
    assert record["crc32"] == expected
