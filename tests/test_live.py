"""Live repositories: scans and writers overlapping an online compaction
(ISSUE 9, DESIGN.md §13) plus the self-healing maintenance loop.

The concurrency tests drive a *real* background-thread
``compact(online=True)`` and pause it mid-staging (by wrapping
``write_shards`` with an event gate), so the assertions run while the
compactor genuinely holds its staging window open:

* every scan started before, during or after the fold is bit-identical
  to a quiescent twin that never compacted concurrently;
* ``apply_delta`` issued during the staging window lands without error,
  and the compactor restages to fold it in.

The maintenance-loop tests exercise every decision the loop can journal
(skip / compact / busy / repair / give-up / error) with fake clocks and
sleeps, so they are deterministic and fast.
"""

import shutil
import threading
from pathlib import Path

import pytest

import repro.setsystem.deltas as deltas_mod
from repro.setsystem import SetSystem
from repro.setsystem.deltas import apply_delta, compact, open_repository
from repro.setsystem.durability import (
    StagingLock,
    current_epoch,
    fsck_repository,
    staging_dir_for,
)
from repro.setsystem.maintenance import (
    MAINTENANCE_SCHEMA,
    MaintenanceLoop,
    maintenance_log_for,
    read_maintenance_log,
    repository_pressure,
)
from repro.setsystem.shards import RepositoryBusyError, write_shards

BASE_ROWS = [[0, 1], [2, 3], [4, 5], [6, 7], [1, 2], [5, 6]]
BATCH_1 = [{"op": "insert", "elements": [0, 3, 6]}, {"op": "delete", "id": 4}]
BATCH_2 = [{"op": "insert", "elements": [1, 4, 7]}, {"op": "delete", "id": 0}]
BATCH_3 = [{"op": "insert", "elements": [2, 5]}, {"op": "delete", "id": 1}]


def _build_chain(tmp_path, batches=(BATCH_1, BATCH_2)):
    root = write_shards(tmp_path / "root", SetSystem(8, BASE_ROWS),
                        chunk_rows=2)
    for batch in batches:
        apply_delta(root, batch)
    return root


def _masks(root):
    with open_repository(root) as repo:
        return list(repo.iter_row_masks())


class _StagingGate:
    """Wrap ``write_shards`` so a staging write signals and then waits.

    Only the *staging* write (destination named ``<root>.compact-tmp``)
    is gated; base writes pass straight through.  The gate opens once
    and stays open, so the compactor's restage loop never deadlocks.
    """

    def __init__(self, monkeypatch):
        self.staged = threading.Event()
        self.proceed = threading.Event()
        self._real = deltas_mod.write_shards
        monkeypatch.setattr(deltas_mod, "write_shards", self)

    def __call__(self, dest, rows, **kwargs):
        result = self._real(dest, rows, **kwargs)
        if Path(dest).name.endswith(".compact-tmp"):
            self.staged.set()
            assert self.proceed.wait(timeout=30)
        return result


def _fold_in_background(root, errors):
    """Run ``compact(online=True)`` in a thread, capturing any failure
    (a compaction error must fail the test, not vanish with the thread)."""
    def run():
        try:
            compact(root, online=True)
        except BaseException as exc:  # noqa: BLE001 - asserted by the test
            errors.append(exc)

    thread = threading.Thread(target=run)
    thread.start()
    return thread


# ----------------------------------------------------------------------
# Property: overlapping scans are bit-identical to a quiescent twin
# ----------------------------------------------------------------------
def test_scans_overlapping_online_compact_are_bit_identical(
    tmp_path, monkeypatch
):
    root = _build_chain(tmp_path)
    twin = Path(shutil.copytree(root, tmp_path / "twin"))
    expected = _masks(twin)

    gate = _StagingGate(monkeypatch)
    errors = []
    with open_repository(root) as live:
        before = list(live.iter_row_masks())
        thread = _fold_in_background(root, errors)
        assert gate.staged.wait(timeout=30)
        # Mid-staging: the long-lived handle and a brand-new one both
        # see exactly the pre-fold bits.
        during = list(live.iter_row_masks())
        with open_repository(root) as mid:
            fresh = list(mid.iter_row_masks())
        gate.proceed.set()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert not errors, errors
        # Post-swing: the pre-fold handle keeps serving the same bits
        # (its mmaps pin the superseded family until the lease drains).
        after_swing = list(live.iter_row_masks())
    assert before == during == fresh == after_swing == expected
    # A handle opened after the fold sees the same rows from one clean
    # generation, and the twin that never compacted agrees bit-for-bit.
    assert _masks(root) == expected
    with open_repository(root) as folded:
        assert folded.pending_deltas == 0
    assert current_epoch(root) == 1
    assert fsck_repository(root).ok


def test_apply_delta_lands_during_online_staging(tmp_path, monkeypatch):
    root = _build_chain(tmp_path)
    twin = Path(shutil.copytree(root, tmp_path / "twin"))

    gate = _StagingGate(monkeypatch)
    errors = []
    thread = _fold_in_background(root, errors)
    assert gate.staged.wait(timeout=30)
    # The acceptance criterion: a delta issued during the compact lands
    # without error (the staging window holds no repository lock).
    apply_delta(root, BATCH_3)
    gate.proceed.set()
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert not errors, errors
    # The compactor noticed the moved chain token under its lock and
    # restaged, so the landed delta is folded in, not dropped.
    with open_repository(root) as repo:
        assert repo.pending_deltas == 0
    apply_delta(twin, BATCH_3)
    assert _masks(root) == _masks(twin)
    assert fsck_repository(root).ok


def test_online_compact_of_clean_repository_is_a_noop(tmp_path):
    root = _build_chain(tmp_path, batches=())
    before = _masks(root)
    compact(root, online=True)
    assert _masks(root) == before
    assert current_epoch(root) == 0  # no fold, no epoch bump


# ----------------------------------------------------------------------
# Maintenance pressure signals
# ----------------------------------------------------------------------
def test_repository_pressure_reads_only_manifests(tmp_path):
    root = _build_chain(tmp_path)
    pressure = repository_pressure(root)
    assert pressure["generations"] == 2
    assert pressure["base_rows"] == len(BASE_ROWS)
    assert pressure["total_rows"] == len(BASE_ROWS) + 2  # one insert each
    assert pressure["dead_rows"] == 2  # ids 4 and 0 tombstoned
    assert pressure["live_rows"] == pressure["total_rows"] - 2
    assert pressure["dead_fraction"] == pytest.approx(2 / 8)
    # The signals agree with the expensive merged view.
    with open_repository(root) as repo:
        assert pressure["live_rows"] == repo.m
    # A clean single generation is zero pressure.
    compact(root)
    pressure = repository_pressure(root)
    assert pressure["generations"] == 0
    assert pressure["dead_fraction"] == 0.0


# ----------------------------------------------------------------------
# MaintenanceLoop decisions
# ----------------------------------------------------------------------
def _loop(root, **kwargs):
    kwargs.setdefault("sleep", lambda seconds: None)
    return MaintenanceLoop(root, **kwargs)


def test_maintain_skips_below_thresholds(tmp_path):
    root = _build_chain(tmp_path)
    record = _loop(root, max_generations=99).run_once()
    assert record["action"] == "skip"
    assert record["schema"] == MAINTENANCE_SCHEMA
    assert record["pressure"]["generations"] == 2
    # The decision was journaled durably to the sibling log.
    assert maintenance_log_for(root).is_file()
    assert read_maintenance_log(root)[-1] == record
    # The log is a *sibling* of the root: the tree itself is untouched.
    assert maintenance_log_for(root).parent == root.parent
    assert not any(root.rglob("*.maintenance.log"))


def test_maintain_compacts_on_generation_pressure(tmp_path):
    root = _build_chain(tmp_path)
    record = _loop(root, max_generations=2).run_once()
    assert record["action"] == "compact"
    assert record["attempts"] == 1
    assert "generations 2 >= 2" in record["reason"]
    with open_repository(root) as repo:
        assert repo.pending_deltas == 0
    assert current_epoch(root) == 1
    assert _loop(root, max_generations=2).run_once()["action"] == "skip"


def test_maintain_compacts_on_dead_fraction_pressure(tmp_path):
    root = _build_chain(tmp_path)
    record = _loop(
        root, max_generations=99, max_dead_fraction=0.25
    ).run_once()
    assert record["action"] == "compact"
    assert "dead_fraction" in record["reason"]


def test_maintain_backs_off_on_contention_then_gives_up(tmp_path):
    root = _build_chain(tmp_path)
    sleeps = []
    loop = MaintenanceLoop(
        root,
        max_generations=1,
        retry={"attempts": 3, "backoff": 0.25, "jitter": 0.0},
        sleep=sleeps.append,
    )
    with StagingLock(root):  # a live online compactor holds the marker
        record = loop.run_once()
    assert record["action"] == "give-up"
    assert record["attempts"] == 3
    # Exponential backoff between attempts (jitter zeroed): 0.25, 0.5.
    assert sleeps == [0.25, 0.5]
    actions = [r["action"] for r in read_maintenance_log(root)]
    assert actions == ["busy", "busy", "busy", "give-up"]
    # Contention cleared: the next cycle succeeds from scratch.
    record = loop.run_once()
    assert record["action"] == "compact"


def test_maintain_repairs_stale_staging_then_compacts(tmp_path):
    root = _build_chain(tmp_path)
    staging_dir_for(root).mkdir()  # crash debris, no live marker
    record = _loop(root, max_generations=1).run_once()
    assert record["action"] == "compact"
    assert record["attempts"] == 1  # the one-time self-heal is free
    actions = [r["action"] for r in read_maintenance_log(root)]
    assert actions == ["repair", "compact"]
    assert not staging_dir_for(root).exists()
    assert fsck_repository(root).ok


def test_watch_paces_cycles_and_survives_errors(tmp_path):
    root = _build_chain(tmp_path)
    compact(root)
    sleeps = []
    loop = MaintenanceLoop(
        root, max_generations=99, interval=5.0, sleep=sleeps.append
    )
    records = loop.watch(cycles=3)
    assert [r["action"] for r in records] == ["skip"] * 3
    assert sleeps == [5.0, 5.0]  # between cycles, not after the last
    # An unreadable repository is journaled, never fatal to the loop.
    shutil.rmtree(root)
    records = loop.watch(cycles=2)
    assert [r["action"] for r in records] == ["error", "error"]
    assert "No such file" in records[0]["error"]


def test_watch_duration_budget_uses_the_injected_clock(tmp_path):
    root = _build_chain(tmp_path)
    compact(root)
    ticks = iter(range(100))
    loop = MaintenanceLoop(
        root,
        max_generations=99,
        interval=0.0,
        clock=lambda: next(ticks),
        sleep=lambda seconds: None,
    )
    records = loop.watch(duration=3)
    assert 1 <= len(records) <= 3
    assert all(r["action"] == "skip" for r in records)


def test_maintenance_loop_validates_knobs(tmp_path):
    root = _build_chain(tmp_path)
    with pytest.raises(ValueError, match="max_generations"):
        MaintenanceLoop(root, max_generations=0)
    with pytest.raises(ValueError, match="max_dead_fraction"):
        MaintenanceLoop(root, max_dead_fraction=0.0)
    with pytest.raises(ValueError, match="interval"):
        MaintenanceLoop(root, interval=-1)
    with pytest.raises(ValueError):
        MaintenanceLoop(root, retry={"no_such_knob": 1})


def test_read_maintenance_log_skips_torn_lines(tmp_path):
    root = _build_chain(tmp_path)
    _loop(root, max_generations=99).run_once()
    with open(maintenance_log_for(root), "a", encoding="utf-8") as handle:
        handle.write('{"torn": ')  # crash mid-append
    _loop(root, max_generations=99).run_once()
    records = read_maintenance_log(root)
    assert [r["action"] for r in records] == ["skip", "skip"]
    assert read_maintenance_log(root, limit=1) == records[-1:]
    assert read_maintenance_log(tmp_path / "nowhere") == []


def test_fsck_surfaces_the_maintenance_tail(tmp_path):
    root = _build_chain(tmp_path)
    loop = _loop(root, max_generations=1)
    for _ in range(7):
        loop.run_once()
    report = fsck_repository(root)
    assert report.ok
    assert len(report.maintenance) == 5  # the tail, not the whole log
    assert report.maintenance[0]["action"] in {"skip", "compact"}
    assert all(r["schema"] == MAINTENANCE_SCHEMA
               for r in report.maintenance)


# ----------------------------------------------------------------------
# Churn while cached: the hot chunk cache never serves a stale chunk
# ----------------------------------------------------------------------
def test_warm_cache_survives_compaction_without_staleness(tmp_path):
    from repro.engine import SerialScanExecutor
    from repro.engine.cache import configure_cache, get_cache

    root = _build_chain(tmp_path)
    mask = (1 << 8) - 1
    executor = SerialScanExecutor()
    configure_cache("8m")
    try:
        with open_repository(root) as view:
            cold = executor.scan_repository(view, mask)
            warm = executor.scan_repository(view, mask)
        assert list(cold.gains) == list(warm.gains)
        stats = get_cache().stats()
        assert stats["hits"] > 0, stats
        # Compaction rewrites the repository in place: the cache token
        # changes, so every warm entry becomes unreachable by key.
        compact(root)
        with open_repository(root) as view:
            cached_after = executor.scan_repository(view, mask)
        configure_cache("off")
        with open_repository(root) as view:
            reference = executor.scan_repository(view, mask)
        assert list(cached_after.gains) == list(reference.gains)
        assert cached_after.captured == reference.captured
    finally:
        configure_cache(None)


def test_warm_cache_with_online_compaction_stays_bit_identical(tmp_path):
    from repro.engine import SerialScanExecutor
    from repro.engine.cache import configure_cache

    root = _build_chain(tmp_path)
    mask = (1 << 8) - 1
    executor = SerialScanExecutor()
    configure_cache("8m")
    try:
        with open_repository(root) as view:
            executor.scan_repository(view, mask)  # warm the cache
        compact(root, online=True)
        apply_delta(root, BATCH_3)
        with open_repository(root) as view:
            churned = executor.scan_repository(view, mask)
        configure_cache("off")
        with open_repository(root) as view:
            reference = executor.scan_repository(view, mask)
        assert list(churned.gains) == list(reference.gains)
    finally:
        configure_cache(None)
