"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.setsystem import load


class TestGenerate:
    @pytest.mark.parametrize("workload", ["uniform", "planted", "zipf", "blog"])
    def test_generates_loadable_instances(self, tmp_path, workload, capsys):
        path = tmp_path / f"{workload}.json"
        code = main(
            ["generate", workload, str(path), "--n", "40", "--m", "30", "--seed", "1"]
        )
        assert code == 0
        system = load(path)
        assert system.n == 40
        out = capsys.readouterr().out
        assert workload in out

    def test_text_format(self, tmp_path):
        path = tmp_path / "inst.txt"
        assert main(["generate", "uniform", str(path), "--n", "10", "--m", "8"]) == 0
        assert load(path).n == 10


class TestSolve:
    @pytest.fixture
    def instance_path(self, tmp_path):
        path = tmp_path / "inst.json"
        main(["generate", "planted", str(path), "--n", "60", "--m", "40",
              "--opt", "4", "--seed", "3"])
        return str(path)

    @pytest.mark.parametrize(
        "algorithm", ["iter", "store-all", "multi-pass", "threshold", "er14",
                      "cw16", "sg09"]
    )
    def test_every_algorithm_solves(self, instance_path, algorithm, capsys):
        code = main(["solve", instance_path, "--algorithm", algorithm,
                     "--no-polylog"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cover with" in out
        assert "passes" in out

    def test_show_cover(self, instance_path, capsys):
        main(["solve", instance_path, "--algorithm", "store-all", "--show-cover"])
        assert "sets      :" in capsys.readouterr().out

    def test_delta_flag(self, instance_path, capsys):
        code = main(["solve", instance_path, "--delta", "1.0", "--no-polylog"])
        assert code == 0


class TestInfo:
    def test_basic_stats(self, tmp_path, capsys):
        path = tmp_path / "inst.json"
        main(["generate", "uniform", str(path), "--n", "30", "--m", "20"])
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "elements (n): 30" in out
        assert "feasible    : True" in out

    def test_bounds(self, tmp_path, capsys):
        path = tmp_path / "inst.json"
        main(["generate", "planted", str(path), "--n", "30", "--m", "20",
              "--opt", "3"])
        assert main(["info", str(path), "--bounds"]) == 0
        assert "optimum     : in [" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "x", "--algorithm", "bogus"])
