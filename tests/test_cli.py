"""Tests for the command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.setsystem import load


class TestGenerate:
    @pytest.mark.parametrize("workload", ["uniform", "planted", "zipf", "blog"])
    def test_generates_loadable_instances(self, tmp_path, workload, capsys):
        path = tmp_path / f"{workload}.json"
        code = main(
            ["generate", workload, str(path), "--n", "40", "--m", "30", "--seed", "1"]
        )
        assert code == 0
        system = load(path)
        assert system.n == 40
        out = capsys.readouterr().out
        assert workload in out

    def test_text_format(self, tmp_path):
        path = tmp_path / "inst.txt"
        assert main(["generate", "uniform", str(path), "--n", "10", "--m", "8"]) == 0
        assert load(path).n == 10


class TestSolve:
    @pytest.fixture
    def instance_path(self, tmp_path):
        path = tmp_path / "inst.json"
        main(["generate", "planted", str(path), "--n", "60", "--m", "40",
              "--opt", "4", "--seed", "3"])
        return str(path)

    @pytest.mark.parametrize(
        "algorithm", ["iter", "store-all", "multi-pass", "threshold", "er14",
                      "cw16", "sg09"]
    )
    def test_every_algorithm_solves(self, instance_path, algorithm, capsys):
        code = main(["solve", instance_path, "--algorithm", algorithm,
                     "--no-polylog"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cover with" in out
        assert "passes" in out

    def test_show_cover(self, instance_path, capsys):
        main(["solve", instance_path, "--algorithm", "store-all", "--show-cover"])
        assert "sets      :" in capsys.readouterr().out

    def test_delta_flag(self, instance_path, capsys):
        code = main(["solve", instance_path, "--delta", "1.0", "--no-polylog"])
        assert code == 0


class TestInfo:
    def test_basic_stats(self, tmp_path, capsys):
        path = tmp_path / "inst.json"
        main(["generate", "uniform", str(path), "--n", "30", "--m", "20"])
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "elements (n): 30" in out
        assert "feasible    : True" in out

    def test_bounds(self, tmp_path, capsys):
        path = tmp_path / "inst.json"
        main(["generate", "planted", str(path), "--n", "30", "--m", "20",
              "--opt", "3"])
        assert main(["info", str(path), "--bounds"]) == 0
        assert "optimum     : in [" in capsys.readouterr().out


class TestShard:
    def test_shard_then_solve_out_of_core(self, tmp_path, capsys):
        instance = tmp_path / "inst.json"
        main(["generate", "planted", str(instance), "--n", "60", "--m", "40",
              "--opt", "4", "--seed", "3"])
        shards = tmp_path / "inst.shards"
        # The pre-subcommand spelling still works as an alias for `create`.
        assert main(["shard", str(instance), str(shards), "--chunk-rows", "7"]) == 0
        out = capsys.readouterr().out
        assert "shard(s)" in out and "m=40" in out

        # A directory input routes through ShardedSetStream; results match
        # the in-memory run of the same file.
        assert main(["solve", str(shards), "--algorithm", "iter",
                     "--no-polylog"]) == 0
        sharded_out = capsys.readouterr().out
        assert main(["solve", str(instance), "--algorithm", "iter",
                     "--no-polylog"]) == 0
        memory_out = capsys.readouterr().out
        pick = lambda out, key: [l for l in out.splitlines() if l.startswith(key)]
        assert pick(sharded_out, "result") == pick(memory_out, "result")
        assert pick(sharded_out, "passes") == pick(memory_out, "passes")

    def test_sparse_uniform_generator(self, tmp_path):
        path = tmp_path / "sparse.json"
        assert main(["generate", "sparse-uniform", str(path), "--n", "50",
                     "--m", "30", "--expected-size", "4"]) == 0
        assert load(path).m == 30

    def test_shard_create_subcommand(self, tmp_path, capsys):
        instance = tmp_path / "inst.json"
        main(["generate", "uniform", str(instance), "--n", "20", "--m", "15"])
        assert main(["shard", "create", str(instance),
                     str(tmp_path / "repo")]) == 0
        assert "shard(s)" in capsys.readouterr().out

    def test_shard_backfill_stats_upgrades_v2_in_place(self, tmp_path, capsys):
        """`repro shard backfill-stats` takes a v1/v2 repo to v3, no Python."""
        import json

        from repro.setsystem.shards import (
            SHARD_SCHEMA,
            SHARD_SCHEMA_V2,
            ShardedRepository,
        )

        instance = tmp_path / "inst.json"
        main(["generate", "planted", str(instance), "--n", "40", "--m", "30",
              "--opt", "4", "--seed", "5"])
        repo = tmp_path / "repo"
        main(["shard", "create", str(instance), str(repo),
              "--chunk-rows", "6"])
        capsys.readouterr()
        # Downgrade the fresh repository into a v2 fixture.
        manifest_path = repo / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema"] = SHARD_SCHEMA_V2
        manifest.pop("stats_crc32")
        for meta in manifest["shards"]:
            meta.pop("stats")
        manifest_path.write_text(json.dumps(manifest))

        # Dry run: reports the plan, rewrites nothing.
        assert main(["shard", "backfill-stats", str(repo), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert f"before : schema={SHARD_SCHEMA_V2}" in out
        assert "dry-run: would compute statistics" in out
        with ShardedRepository(repo) as opened:
            assert opened.schema == SHARD_SCHEMA_V2

        # Real run: before/after schemas printed, manifest upgraded.
        assert main(["shard", "backfill-stats", str(repo)]) == 0
        out = capsys.readouterr().out
        assert f"before : schema={SHARD_SCHEMA_V2}" in out
        assert f"after  : schema={SHARD_SCHEMA}" in out
        with ShardedRepository(repo, verify=True) as opened:
            assert opened.schema == SHARD_SCHEMA and opened.has_stats

        # Idempotent: the second run says so and changes nothing.
        assert main(["shard", "backfill-stats", str(repo)]) == 0
        assert "already up to date" in capsys.readouterr().out


class TestExperiments:
    def test_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        for suite in ("smoke", "parity", "tradeoff", "large"):
            assert suite in out

    def test_suite_required(self, capsys):
        assert main(["experiments"]) == 2

    def test_smoke_suite_writes_report(self, tmp_path, capsys):
        assert main(["experiments", "--suite", "smoke",
                     "--output-dir", str(tmp_path), "--no-update-docs"]) == 0
        assert (tmp_path / "EXPERIMENTS_smoke.json").exists()
        out = capsys.readouterr().out
        assert "parity" in out.lower()
        assert "report saved" in out


class TestJobs:
    @pytest.fixture
    def instance_path(self, tmp_path):
        path = tmp_path / "inst.json"
        main(["generate", "planted", str(path), "--n", "40", "--m", "30",
              "--opt", "4", "--seed", "3"])
        return str(path)

    def test_solve_accepts_jobs(self, instance_path, tmp_path, capsys):
        shards = tmp_path / "inst.shards"
        main(["shard", instance_path, str(shards), "--chunk-rows", "7"])
        capsys.readouterr()
        assert main(["solve", instance_path, "--algorithm", "threshold",
                     "--jobs", "2"]) == 0
        memory_out = capsys.readouterr().out
        assert main(["solve", str(shards), "--algorithm", "threshold",
                     "--jobs", "auto"]) == 0
        sharded_out = capsys.readouterr().out
        pick = lambda out, key: [l for l in out.splitlines() if l.startswith(key)]
        assert pick(sharded_out, "result") == pick(memory_out, "result")

    @pytest.mark.parametrize("command", [
        ["solve", "x", "--jobs", "0"],
        ["solve", "x", "--jobs", "-2"],
        ["solve", "x", "--jobs", "lots"],
        ["bench", "--jobs", "1.5"],
        ["experiments", "--jobs", "none"],
    ])
    def test_invalid_jobs_rejected(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(command)
        # An argparse usage error naming the flag — never a traceback.
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--jobs" in err and "positive integer" in err

    def test_jobs_defaults_to_auto(self):
        for command in (["solve", "x"], ["bench"], ["experiments"]):
            assert build_parser().parse_args(command).jobs == "auto"

    @pytest.mark.parametrize("workers", [
        "", ":80", "host:", "host", "host:0", "host:-4", "host:65536",
        "host:http", "a:1,,b:2",
    ])
    def test_invalid_workers_rejected(self, workers, capsys):
        """--workers shares the --jobs error path: usage errors naming the
        flag (bad port, empty host, missing colon), never tracebacks."""
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["solve", "x", "--transport", "remote", "--workers", workers]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--workers" in err and "host:port" in err

    def test_transport_worker_flag_combinations(self, tmp_path, capsys):
        shards = tmp_path / "repo"
        instance = tmp_path / "inst.json"
        main(["generate", "uniform", str(instance), "--n", "12", "--m", "8"])
        main(["shard", "create", str(instance), str(shards)])
        capsys.readouterr()
        # remote without workers / workers without remote / remote on a
        # non-directory input: all argparse usage errors, exit code 2.
        cases = [
            ["solve", str(shards), "--transport", "remote"],
            ["solve", str(shards), "--workers", "h:1"],
            ["solve", str(instance), "--transport", "remote",
             "--workers", "h:1"],
            ["solve", str(shards), "--transport", "remote",
             "--workers", "h:1", "--jobs", "8"],
        ]
        for argv in cases:
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2, argv
            err = capsys.readouterr().err
            assert "--transport" in err or "--workers" in err, argv

    def test_transport_defaults_to_local(self):
        args = build_parser().parse_args(["solve", "x"])
        assert args.transport == "local" and args.workers is None

    def test_worker_serve_requires_root(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["worker", "serve"])
        assert excinfo.value.code == 2
        assert "--root" in capsys.readouterr().err

    def test_solve_accepts_planner_off(self, instance_path, capsys):
        assert main(["solve", instance_path, "--algorithm", "threshold",
                     "--planner", "off"]) == 0
        off_out = capsys.readouterr().out
        assert main(["solve", instance_path, "--algorithm", "threshold"]) == 0
        on_out = capsys.readouterr().out
        pick = lambda out, key: [l for l in out.splitlines() if l.startswith(key)]
        assert pick(off_out, "result") == pick(on_out, "result")
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "x", "--planner", "maybe"])


class TestWorkerPing:
    def test_ping_running_worker(self, tmp_path, capsys):
        from repro.engine import WorkerServer
        from repro.engine.transport.remote import PROTOCOL_VERSION

        with WorkerServer(tmp_path) as server:
            server.start()
            host, port = server.address
            code = main(["worker", "ping", f"{host}:{port}", "--count", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"worker    : {host}:{port}" in out
        assert f"protocol  : v{PROTOCOL_VERSION}" in out
        assert "pid       :" in out
        assert "rtt (ms)  :" in out and "over 2 ping(s)" in out

    def test_ping_unreachable_worker_fails_cleanly(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = main(["worker", "ping", f"127.0.0.1:{port}",
                     "--connect-timeout", "0.5"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot reach remote worker" in err

    def test_ping_rejects_multiple_workers(self, capsys):
        code = main(["worker", "ping", "a:1,b:2"])
        assert code == 1
        assert "exactly one worker" in capsys.readouterr().err


class TestRetryFlags:
    @pytest.fixture
    def shards(self, tmp_path, capsys):
        instance = tmp_path / "inst.json"
        main(["generate", "planted", str(instance), "--n", "24", "--m",
              "16", "--opt", "3", "--seed", "5"])
        shards = tmp_path / "repo"
        main(["shard", "create", str(instance), str(shards)])
        capsys.readouterr()
        return str(shards)

    @pytest.mark.parametrize("flags", [
        ["--retry-attempts", "3"],
        ["--deadline", "5"],
        ["--idle-timeout", "9"],
        ["--no-local-fallback"],
    ])
    def test_retry_flags_require_remote_transport(self, shards, flags,
                                                  capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["solve", shards] + flags)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--transport remote" in err

    @pytest.mark.parametrize("flag, value, named", [
        ("--retry-attempts", "0", "--retry-attempts"),
        ("--retry-jitter", "2", "--retry-jitter"),
        ("--retry-backoff", "-1", "--retry-backoff"),
        ("--deadline", "0", "--deadline"),
        ("--idle-timeout", "-2", "--idle-timeout"),
        ("--retry-eject-after", "0", "--retry-eject-after"),
    ])
    def test_invalid_retry_values_name_the_flag(self, shards, flag, value,
                                                named, capsys):
        """Validation lives in RetryPolicy; the CLI surfaces it as a
        usage error naming the flag — never a traceback."""
        with pytest.raises(SystemExit) as excinfo:
            main(["solve", shards, "--transport", "remote",
                  "--workers", "h:1", flag, value])
        assert excinfo.value.code == 2
        assert named in capsys.readouterr().err

    def test_remote_solve_with_retry_flags(self, shards, capsys):
        """The full path: retry flags reach the executor and the solve
        matches the local run line for line."""
        from repro.engine import WorkerServer

        assert main(["solve", shards, "--algorithm", "threshold"]) == 0
        local_out = capsys.readouterr().out
        with WorkerServer(Path(shards).parent) as server:
            server.start()
            host, port = server.address
            code = main([
                "solve", shards, "--algorithm", "threshold",
                "--transport", "remote", "--workers", f"{host}:{port}",
                "--retry-attempts", "3", "--retry-backoff", "0.05",
                "--deadline", "60", "--seed", "0",
            ])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == local_out
        # No faults happened, so no fault report lands on stderr.
        assert "faults" not in captured.err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "x", "--algorithm", "bogus"])

    def test_bench_scale_typo_is_a_clean_error(self, tmp_path, capsys):
        assert main(["bench", "--scale", "bogus",
                     "--output", str(tmp_path / "b.json")]) == 2
        assert "unknown scale" in capsys.readouterr().err

    def test_experiments_suite_typo_is_a_clean_error(self, capsys):
        assert main(["experiments", "--suite", "parityy",
                     "--no-update-docs"]) == 2
        assert "unknown suite" in capsys.readouterr().err


class TestShardDurability:
    """`shard fsck`, `--force`, `--output` validation, `--checkpoint`."""

    @pytest.fixture
    def chain(self, tmp_path, capsys):
        import json

        from repro.setsystem import SetSystem, save
        from repro.setsystem.deltas import apply_delta

        save(
            SetSystem(8, [[0, 1], [2, 3], [4, 5], [6, 7], [1, 2], [5, 6]]),
            tmp_path / "base.json",
        )
        root = tmp_path / "repo"
        main(["shard", "create", str(tmp_path / "base.json"), str(root),
              "--chunk-rows", "2"])
        apply_delta(root, [{"op": "insert", "elements": [0, 3, 6]},
                           {"op": "delete", "id": 4}])
        capsys.readouterr()
        return root

    def test_fsck_clean_repository(self, chain, capsys):
        assert main(["shard", "fsck", str(chain)]) == 0
        assert "clean (deep sweep)" in capsys.readouterr().out

    def test_fsck_reports_typed_findings(self, chain, capsys):
        shard = sorted(chain.glob("shard-*.bin"))[0]
        shard.write_bytes(b"\xff" + shard.read_bytes()[1:])
        assert main(["shard", "fsck", str(chain)]) == 1
        captured = capsys.readouterr()
        assert "shard-checksum" in captured.out
        assert "finding(s)" in captured.err

    def test_fsck_shallow_skips_checksums(self, chain, capsys):
        shard = sorted(chain.glob("shard-*.bin"))[0]
        shard.write_bytes(b"\xff" + shard.read_bytes()[1:])
        assert main(["shard", "fsck", str(chain), "--shallow"]) == 0
        assert "clean (shallow sweep)" in capsys.readouterr().out

    def test_fsck_json_report(self, chain, capsys):
        import json

        assert main(["shard", "fsck", str(chain), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.fsck/v1"
        assert payload["findings"] == []

    def test_fsck_repair_discards_stale_staging(self, chain, capsys):
        from repro.setsystem.durability import staging_dir_for

        staging_dir_for(chain).mkdir()
        assert main(["shard", "fsck", str(chain)]) == 1
        assert "stale-staging" in capsys.readouterr().out
        assert main(["shard", "fsck", str(chain), "--repair"]) == 0
        out = capsys.readouterr().out
        assert "repaired:" in out and "after repair" in out
        assert not staging_dir_for(chain).exists()

    def test_compact_and_apply_delta_refuse_stale_staging_until_forced(
        self, chain, capsys
    ):
        import json

        from repro.setsystem.durability import staging_dir_for

        staging_dir_for(chain).mkdir()
        ops = chain.parent / "ops.json"
        ops.write_text(json.dumps([{"op": "insert", "elements": [0, 7]}]))
        assert main(["shard", "apply-delta", str(chain), str(ops)]) == 1
        assert "stale staging" in capsys.readouterr().err
        assert main(["shard", "compact", str(chain)]) == 1
        assert "stale staging" in capsys.readouterr().err
        assert main(["shard", "compact", str(chain), "--force"]) == 0
        assert "compacted" in capsys.readouterr().out
        assert not staging_dir_for(chain).exists()

    @pytest.mark.parametrize("dest", ["inside", ".", "sub/deep"])
    def test_compact_output_inside_source_is_a_usage_error(
        self, chain, dest, capsys
    ):
        target = chain if dest == "." else chain / dest
        with pytest.raises(SystemExit) as excinfo:
            main(["shard", "compact", str(chain), "--output", str(target)])
        assert excinfo.value.code == 2
        assert "inside the source repository" in capsys.readouterr().err

    def test_compact_output_nonempty_dir_is_a_usage_error(
        self, chain, tmp_path, capsys
    ):
        full = tmp_path / "full"
        full.mkdir()
        (full / "x").touch()
        with pytest.raises(SystemExit) as excinfo:
            main(["shard", "compact", str(chain), "--output", str(full)])
        assert excinfo.value.code == 2
        assert "not an empty directory" in capsys.readouterr().err

    def test_apply_delta_checkpoint_survives_restart(
        self, chain, tmp_path, capsys
    ):
        import json

        from repro.dynamic import DynamicCover

        ckpt = tmp_path / "cover.ckpt"
        batch1 = tmp_path / "b1.json"
        batch1.write_text(json.dumps([{"op": "insert", "elements": [0, 7]}]))
        assert main(["shard", "apply-delta", str(chain), str(batch1),
                     "--checkpoint", str(ckpt)]) == 0
        out = capsys.readouterr()
        assert "checkpoint" in out.out and "full solve(s)" in out.out
        assert "note:" not in out.err
        # Second invocation restores (chain token still matches) and
        # keeps maintaining incrementally — no stale note, no rebuild.
        batch2 = tmp_path / "b2.json"
        batch2.write_text(json.dumps([{"op": "delete", "id": 3}]))
        assert main(["shard", "apply-delta", str(chain), str(batch2),
                     "--checkpoint", str(ckpt)]) == 0
        out = capsys.readouterr()
        assert "note:" not in out.err
        restored = DynamicCover.restore(ckpt, root=chain)
        restored.verify()
        assert restored.stats()["updates"] == 2
        assert restored.stats()["full_solves"] == 0

    def test_apply_delta_checkpoint_stale_rebuilds_loudly(
        self, chain, tmp_path, capsys
    ):
        import json

        from repro.setsystem.deltas import apply_delta

        ckpt = tmp_path / "cover.ckpt"
        batch = tmp_path / "b.json"
        batch.write_text(json.dumps([{"op": "insert", "elements": [3, 7]}]))
        assert main(["shard", "apply-delta", str(chain), str(batch),
                     "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        # The chain moves without the checkpoint being told.
        apply_delta(chain, [{"op": "insert", "elements": [1, 4]}])
        assert main(["shard", "apply-delta", str(chain), str(batch),
                     "--checkpoint", str(ckpt)]) == 0
        assert "note:" in capsys.readouterr().err

    def test_apply_delta_corrupt_checkpoint_is_an_error(
        self, chain, tmp_path, capsys
    ):
        import json

        ckpt = tmp_path / "cover.ckpt"
        batch = tmp_path / "b.json"
        batch.write_text(json.dumps([{"op": "insert", "elements": [3, 7]}]))
        assert main(["shard", "apply-delta", str(chain), str(batch),
                     "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        ckpt.write_text("{corrupt")
        assert main(["shard", "apply-delta", str(chain), str(batch),
                     "--checkpoint", str(ckpt)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_fsck_legacy_alias_is_not_hijacked(self, chain, capsys):
        # `repro shard fsck X` must reach the fsck verb, not the
        # `shard create fsck X` compatibility alias.
        assert main(["shard", "fsck", str(chain)]) == 0
        assert "clean" in capsys.readouterr().out


class TestShardMaintain:
    """`shard maintain` (+ `compact --online`): the operator surface of
    the self-healing maintenance loop."""

    @pytest.fixture
    def chain(self, tmp_path, capsys):
        from repro.setsystem import SetSystem, save
        from repro.setsystem.deltas import apply_delta

        save(
            SetSystem(8, [[0, 1], [2, 3], [4, 5], [6, 7], [1, 2], [5, 6]]),
            tmp_path / "base.json",
        )
        root = tmp_path / "repo"
        main(["shard", "create", str(tmp_path / "base.json"), str(root),
              "--chunk-rows", "2"])
        apply_delta(root, [{"op": "insert", "elements": [0, 3, 6]},
                           {"op": "delete", "id": 4}])
        capsys.readouterr()
        return root

    def test_maintain_folds_then_skips(self, chain, capsys):
        from repro.setsystem.maintenance import read_maintenance_log

        assert main(["shard", "maintain", str(chain),
                     "--max-generations", "1"]) == 0
        assert "compacted (attempt 1)" in capsys.readouterr().out
        assert read_maintenance_log(chain)[-1]["action"] == "compact"
        # Pressure is gone: the next cycle journals a skip.
        assert main(["shard", "maintain", str(chain),
                     "--max-generations", "1"]) == 0
        assert "skip: generations=0" in capsys.readouterr().out

    def test_maintain_watch_runs_bounded_cycles(self, chain, capsys):
        assert main(["shard", "maintain", str(chain), "--watch",
                     "--cycles", "2", "--interval", "0",
                     "--max-generations", "1"]) == 0
        out = capsys.readouterr().out
        assert "compacted (attempt 1)" in out
        assert "skip:" in out

    def test_maintain_gives_up_loudly_under_contention(self, chain, capsys):
        from repro.setsystem.durability import StagingLock

        with StagingLock(chain):  # a live online compactor holds the marker
            code = main(["shard", "maintain", str(chain),
                         "--max-generations", "1",
                         "--retry-attempts", "2",
                         "--retry-backoff", "0.01"])
        assert code == 1
        out = capsys.readouterr().out
        assert "gave up after 2 attempt(s)" in out
        # The per-attempt trail lives in the journal, not on stdout.
        from repro.setsystem.maintenance import read_maintenance_log

        actions = [r["action"] for r in read_maintenance_log(chain)]
        assert actions == ["busy", "busy", "give-up"]

    def test_maintain_validates_knobs(self, chain, capsys):
        assert main(["shard", "maintain", str(chain),
                     "--max-generations", "0"]) == 2
        assert "max_generations" in capsys.readouterr().err

    def test_maintain_missing_repository_is_an_error(self, tmp_path, capsys):
        assert main(["shard", "maintain", str(tmp_path / "nowhere")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_fsck_surfaces_the_maintenance_tail(self, chain, capsys):
        assert main(["shard", "maintain", str(chain),
                     "--max-generations", "1"]) == 0
        capsys.readouterr()
        assert main(["shard", "fsck", str(chain)]) == 0
        out = capsys.readouterr().out
        assert "maintenance log (last 1):" in out
        assert "compacted (attempt 1)" in out

    def test_compact_online_flag(self, chain, capsys):
        assert main(["shard", "compact", str(chain), "--online"]) == 0
        assert "compacted 1 pending generation(s)" in capsys.readouterr().out

    def test_compact_online_with_output_is_a_usage_error(self, chain,
                                                         tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["shard", "compact", str(chain), "--online",
                  "--output", str(tmp_path / "out")])
        assert excinfo.value.code == 2
        assert "--online" in capsys.readouterr().err

    def test_maintain_legacy_alias_is_not_hijacked(self, chain, capsys):
        # `repro shard maintain X` must reach the maintain verb, not the
        # `shard create maintain X` compatibility alias.
        assert main(["shard", "maintain", str(chain),
                     "--max-generations", "99"]) == 0
        assert "skip:" in capsys.readouterr().out
