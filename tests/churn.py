"""Reusable churn-parity property framework (ISSUE 7 test archetype).

Drives random insert/delete/compact interleavings through the delta-shard
chain (:mod:`repro.setsystem.deltas`) and the incremental
:class:`repro.dynamic.DynamicCover` maintainer in lockstep against a
trivially-correct reference model, asserting after every step that

* the merged read view equals the reference merge (rows, in stable-id
  order),
* the maintained cover is valid and within the documented factor of the
  greedy cover of the live system, and
* compaction is byte-for-byte identical to writing the merged system
  from scratch;

and at scenario end that shard statistics, cost estimates, and a full
``iter_set_cover`` solve agree exactly between the merged chain and a
from-scratch rebuild.  ``tests/test_dynamic.py`` runs hundreds of these
scenarios across the backend x encoding x planner x jobs matrix; the
module lives outside that file so future suites (and the experiments
orchestrator's tests) can reuse the generator and referee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core import iter_set_cover
from repro.dynamic import DynamicCover
from repro.offline import greedy_cover
from repro.setsystem import SetSystem
from repro.setsystem.deltas import MergedShardView, apply_delta, compact
from repro.setsystem.shards import ShardedRepository, write_shards
from repro.streaming.sharded import ShardedSetStream
from repro.utils.rng import as_generator

__all__ = [
    "ReferenceModel",
    "Scenario",
    "drive_scenario",
    "random_scenario",
]


class ReferenceModel:
    """The obviously-correct twin: a dict of live rows by stable id."""

    def __init__(self, n: int, base: "list[list[int]]"):
        self.n = n
        self.rows: "dict[int, list[int]]" = {
            i: sorted(row) for i, row in enumerate(base)
        }
        self.next_id = len(base)

    def apply(self, ops: "list[dict]") -> None:
        for op in ops:
            if op["op"] == "insert":
                self.rows[self.next_id] = sorted(op["elements"])
                self.next_id += 1
            else:
                del self.rows[op["id"]]

    def live(self) -> "list[list[int]]":
        """Live rows in stable-id order — the merged view's row order."""
        return [self.rows[key] for key in sorted(self.rows)]

    def compact(self) -> "dict[int, int]":
        """Renumber to the dense post-compaction id space.

        In-place compaction rewrites the repository as a plain family,
        so later delta generations address rows ``0..m_live-1`` in
        merged order.  Returns ``old id -> new id`` for callers that
        track ids across the compaction (e.g. a live maintainer).
        """
        old_ids = sorted(self.rows)
        self.rows = {new: self.rows[old] for new, old in enumerate(old_ids)}
        self.next_id = len(self.rows)
        return {old: new for new, old in enumerate(old_ids)}

    def system(self) -> SetSystem:
        return SetSystem(self.n, self.live())

    def deletable(self, batch_start_ids: "set[int]") -> "list[int]":
        """Ids whose deletion keeps every element covered.

        Restricted to ``batch_start_ids`` because a delta generation may
        only tombstone rows that were live in its *parent* view.
        """
        freq = [0] * self.n
        for row in self.rows.values():
            for element in row:
                freq[element] += 1
        return sorted(
            set_id
            for set_id in self.rows
            if set_id in batch_start_ids
            and all(freq[element] >= 2 for element in self.rows[set_id])
        )


@dataclass(frozen=True)
class Scenario:
    """One random interleaving: a base family plus delta/compact steps."""

    seed: int
    n: int
    base: "list[list[int]]"
    #: ``("delta", ops)`` or ``("compact", None)``, applied in order.
    steps: "list[tuple]" = field(default_factory=list)

    @property
    def updates(self) -> int:
        return sum(len(ops) for kind, ops in self.steps if kind == "delta")


def _feasible_base(rng, n: int, m: int) -> "list[list[int]]":
    """A random base family that is guaranteed to cover the universe."""
    rows = []
    # A covering backbone: consecutive blocks that partition [0, n).
    block = max(2, n // max(1, m // 4))
    for start in range(0, n, block):
        rows.append(list(range(start, min(n, start + block))))
    while len(rows) < m:
        size = 1 + int(rng.integers(max(2, n // 3)))
        rows.append(sorted(
            int(e) for e in rng.choice(n, size=min(size, n), replace=False)
        ))
    rng.shuffle(rows)
    return [sorted(row) for row in rows]


def random_scenario(
    seed: int,
    n: "int | None" = None,
    base_m: "int | None" = None,
    steps: "int | None" = None,
) -> Scenario:
    """A seeded random insert/delete/compact interleaving.

    Every delete respects the frequency rule (each element of the victim
    stays covered elsewhere), so the live system is feasible at every
    prefix and solve referees never hit an uncoverable universe.
    """
    rng = as_generator(seed)
    n = n if n is not None else 12 + int(rng.integers(20))
    base_m = base_m if base_m is not None else 16 + int(rng.integers(24))
    steps = steps if steps is not None else 3 + int(rng.integers(4))
    base = _feasible_base(rng, n, base_m)
    model = ReferenceModel(n, base)
    out: "list[tuple]" = []
    for _ in range(steps):
        if rng.random() < 0.25 and out:
            out.append(("compact", None))
            model.compact()
            continue
        ops: "list[dict]" = []
        batch_start = set(model.rows)
        for _ in range(1 + int(rng.integers(6))):
            victims = model.deletable(batch_start)
            if victims and rng.random() < 0.45:
                victim = victims[int(rng.integers(len(victims)))]
                ops.append({"op": "delete", "id": victim})
                batch_start.discard(victim)
            else:
                size = 1 + int(rng.integers(max(2, n // 2)))
                row = sorted(
                    int(e)
                    for e in rng.choice(n, size=min(size, n), replace=False)
                )
                ops.append({"op": "insert", "elements": row})
            model.apply(ops[-1:])
        out.append(("delta", ops))
    return Scenario(seed=seed, n=n, base=base, steps=out)


def _assert_bit_identical(actual: Path, expected: Path, context: str) -> None:
    actual_names = sorted(p.name for p in Path(actual).iterdir())
    expected_names = sorted(p.name for p in Path(expected).iterdir())
    assert actual_names == expected_names, (
        f"{context}: file sets differ: {actual_names} != {expected_names}"
    )
    for name in actual_names:
        assert (Path(actual) / name).read_bytes() == (
            Path(expected) / name
        ).read_bytes(), f"{context}: {name} is not byte-identical"


def _assert_stats_parity(root: Path, reference: SetSystem,
                         tmp: Path, chunk_rows: int, encoding: str,
                         context: str) -> None:
    """Merged-view stats + cost estimates == a from-scratch rebuild's."""
    rebuilt = write_shards(
        tmp / f"stats-ref-{context}", reference,
        chunk_rows=chunk_rows, encoding=encoding,
    )
    try:
        with MergedShardView(root) as view, ShardedRepository(rebuilt) as ref:
            assert [
                view.compute_shard_stats(shard)
                for shard in range(view.shard_count)
            ] == [
                meta["stats"] for meta in ref._shard_meta
            ], f"{context}: merged shard stats diverge from rebuild"
            assert view.shard_cost_estimates() == ref.shard_cost_estimates(), (
                f"{context}: merged cost estimates diverge from rebuild"
            )
    finally:
        import shutil

        shutil.rmtree(rebuilt, ignore_errors=True)


def drive_scenario(
    scenario: Scenario,
    tmp_path: Path,
    chunk_rows: int = 7,
    encoding: str = "auto",
    backend: str = "python",
    jobs="auto",
    planner: bool = True,
    solve: bool = True,
    theta: float = 2.0,
    restart_every: "int | None" = None,
) -> dict:
    """Replay one scenario, asserting every churn-parity property.

    With ``restart_every=k`` the maintainer is checkpointed to disk and
    rebuilt via :meth:`DynamicCover.restore` after every ``k``-th step —
    simulating a process restart mid-churn.  The restored maintainer
    must carry every property (validity, factor bound, counters) across
    the restart, so the same aggregate assertions apply unchanged.

    Returns the collected endgame facts (cover sizes, update counters)
    so callers can make aggregate assertions across many scenarios.
    """
    tmp_path = Path(tmp_path)
    root = write_shards(
        tmp_path / "root", SetSystem(scenario.n, scenario.base),
        chunk_rows=chunk_rows, encoding=encoding,
    )
    model = ReferenceModel(scenario.n, scenario.base)
    dyn = DynamicCover(scenario.n, enumerate(scenario.base), theta=theta)
    # Disk ids renumber at every in-place compaction; the in-RAM
    # maintainer is untouched by disk compaction, so translate.
    dyn_ids = {i: i for i in range(len(scenario.base))}
    next_dyn = len(scenario.base)
    compactions = 0
    restarts = 0
    for index, (kind, ops) in enumerate(scenario.steps):
        context = f"seed={scenario.seed} step={index}"
        if kind == "delta":
            apply_delta(root, ops)
            for op in ops:
                if op["op"] == "insert":
                    dyn.insert(next_dyn, op["elements"])
                    dyn_ids[model.next_id] = next_dyn
                    next_dyn += 1
                else:
                    dyn.delete(dyn_ids.pop(op["id"]))
                model.apply([op])
        else:
            compact(root)
            compactions += 1
            remap = model.compact()
            dyn_ids = {new: dyn_ids[old] for old, new in remap.items()}
            # A compacted repository must be a plain (delta-free) repo,
            # byte-identical to writing the merged system from scratch.
            rebuilt = write_shards(
                tmp_path / f"compact-ref-{index}", model.system(),
                chunk_rows=chunk_rows, encoding=encoding,
            )
            _assert_bit_identical(root, rebuilt, context)
        if restart_every and (index + 1) % restart_every == 0:
            # Simulated process restart: persist, drop, restore.  The
            # checkpoint is bound to the chain's current content token,
            # so a stale file could never restore silently.
            ckpt = dyn.checkpoint(tmp_path / "cover.ckpt", root=root)
            dyn = DynamicCover.restore(ckpt, root=root)
            restarts += 1
        with MergedShardView(root) as view:
            merged = [sorted(row) for row in view.iter_rows()]
        assert merged == model.live(), (
            f"{context}: merged view diverged from the reference model"
        )
        dyn.verify()
        greedy = len(greedy_cover(model.system()))
        assert dyn.cover_size <= dyn.approx_factor * max(1, greedy), (
            f"{context}: cover {dyn.cover_size} exceeds "
            f"{dyn.approx_factor} x greedy({greedy})"
        )
    final = model.system()
    _assert_stats_parity(
        root, final, tmp_path, chunk_rows, encoding,
        f"seed={scenario.seed} endgame",
    )
    outcome = {
        "seed": scenario.seed,
        "updates": scenario.updates,
        "compactions": compactions,
        "restarts": restarts,
        "live_rows": final.m,
        "cover_size": dyn.cover_size,
        "stats": dyn.stats(),
    }
    if solve:
        rebuilt = write_shards(
            tmp_path / "solve-ref", final,
            chunk_rows=chunk_rows, encoding=encoding,
        )
        results = []
        for path in (root, rebuilt):
            stream = ShardedSetStream(path, jobs=jobs, planner=planner)
            try:
                results.append(iter_set_cover(
                    stream, delta=0.5, seed=scenario.seed, backend=backend,
                    use_polylog_factors=False, include_rho=False,
                ))
            finally:
                stream.close()
        merged_res, rebuilt_res = results
        assert merged_res.selection == rebuilt_res.selection, (
            f"seed={scenario.seed}: merged vs rebuilt covers diverge"
        )
        assert merged_res.passes == rebuilt_res.passes
        assert merged_res.peak_memory_words == rebuilt_res.peak_memory_words
        outcome["solution_size"] = merged_res.solution_size
    return outcome
