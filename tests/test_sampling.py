"""Tests for relative (p, eps)-approximation sampling (Definition 2.4 / Lemma 2.5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import (
    draw_sample,
    element_sample,
    element_sample_size,
    is_relative_approximation,
    relative_approximation_size,
    violating_ranges,
)


class TestSampleSize:
    def test_monotone_in_ranges(self):
        small = relative_approximation_size(8, p=0.1, eps=0.5, q=0.1)
        large = relative_approximation_size(1024, p=0.1, eps=0.5, q=0.1)
        assert large > small

    def test_monotone_in_eps(self):
        loose = relative_approximation_size(64, p=0.1, eps=0.5, q=0.1)
        tight = relative_approximation_size(64, p=0.1, eps=0.1, q=0.1)
        assert tight > loose

    def test_monotone_in_p(self):
        heavy = relative_approximation_size(64, p=0.5, eps=0.5, q=0.1)
        light = relative_approximation_size(64, p=0.01, eps=0.5, q=0.1)
        assert light > heavy

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 2.0])
    def test_rejects_bad_parameters(self, bad):
        with pytest.raises(ValueError):
            relative_approximation_size(8, p=bad, eps=0.5, q=0.1)
        with pytest.raises(ValueError):
            relative_approximation_size(8, p=0.1, eps=bad, q=0.1)
        with pytest.raises(ValueError):
            relative_approximation_size(8, p=0.1, eps=0.5, q=bad)


class TestDrawSample:
    def test_size_capped_at_population(self):
        sample = draw_sample(range(5), 100, seed=0)
        assert sample == frozenset(range(5))

    def test_subset_of_population(self):
        population = set(range(100))
        sample = draw_sample(population, 10, seed=1)
        assert len(sample) == 10
        assert sample <= population

    def test_deterministic_given_seed(self):
        assert draw_sample(range(50), 10, seed=7) == draw_sample(range(50), 10, seed=7)


class TestDefinitionCheck:
    def test_full_sample_always_approximates(self):
        ground = range(20)
        ranges = [set(range(10)), set(range(15, 20)), set()]
        assert is_relative_approximation(ground, ranges, ground, p=0.1, eps=0.3)

    def test_detects_heavy_violation(self):
        ground = range(10)
        ranges = [set(range(5))]  # density 0.5
        sample = {5, 6, 7, 8, 9}  # sample density 0 -> multiplicative violation
        check = violating_ranges(ground, ranges, sample, p=0.2, eps=0.5)
        assert not check.holds
        assert check.violations[0][0] == 0

    def test_light_range_additive_slack(self):
        ground = range(100)
        ranges = [{0}]  # density 0.01, light for p = 0.1
        sample = set(range(50, 100))  # misses the range entirely
        # additive slack eps*p = 0.05 >= 0.01 difference: holds
        assert is_relative_approximation(ground, ranges, sample, p=0.1, eps=0.5)

    def test_rejects_sample_outside_ground(self):
        with pytest.raises(ValueError):
            violating_ranges(range(5), [], {7}, p=0.1, eps=0.5)

    def test_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            violating_ranges(range(5), [], set(), p=0.1, eps=0.5)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_lemma25_size_suffices_empirically(self, seed):
        """At the Lemma 2.5 size (c = 1), random samples satisfy the
        definition on random range families in the overwhelming majority of
        trials; we assert it per-trial with generous eps."""
        import numpy as np

        rng = np.random.default_rng(seed)
        n = 400
        ranges = [
            set(np.flatnonzero(rng.random(n) < density).tolist())
            for density in (0.5, 0.3, 0.1, 0.05)
        ]
        p, eps, q = 0.05, 0.5, 0.1
        size = relative_approximation_size(len(ranges), p, eps, q)
        sample = draw_sample(range(n), size, seed=rng)
        assert is_relative_approximation(range(n), ranges, sample, p, eps)


class TestElementSampling:
    def test_size_zero_universe(self):
        assert element_sample_size(0, 3, 2.0) == 0

    def test_size_capped(self):
        assert element_sample_size(10, 100, 10.0) == 10

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            element_sample_size(10, 0, 2.0)
        with pytest.raises(ValueError):
            element_sample_size(10, 1, 1.0)

    def test_sample_subset(self):
        sample = element_sample(range(50), cover_bound=2, reduction=2.0, seed=0)
        assert sample <= frozenset(range(50))
        assert sample
