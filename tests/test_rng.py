"""Tests for randomness plumbing."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_from_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_generator(1).random(5), as_generator(2).random(5))

    def test_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawn:
    def test_count(self):
        assert len(spawn_generators(0, 4)) == 4

    def test_children_are_independent_streams(self):
        children = spawn_generators(0, 2)
        assert not np.array_equal(children[0].random(8), children[1].random(8))

    def test_deterministic_from_seed(self):
        a = [g.random(3).tolist() for g in spawn_generators(7, 3)]
        b = [g.random(3).tolist() for g in spawn_generators(7, 3)]
        assert a == b
