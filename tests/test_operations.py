"""Tests for set-system operations."""

from __future__ import annotations

import pytest

from repro.setsystem import (
    SetSystem,
    cover_size,
    coverage_histogram,
    greedy_completion,
    merge_systems,
    project_family,
    verify_cover,
)


class TestProjectFamily:
    def test_projection(self):
        sets = [frozenset({0, 1, 2}), frozenset({3})]
        assert project_family(sets, frozenset({1, 3})) == [
            frozenset({1}),
            frozenset({3}),
        ]

    def test_empty_projection_kept(self):
        assert project_family([frozenset({0})], frozenset()) == [frozenset()]


class TestVerifyCover:
    def test_passes_on_cover(self, tiny_system):
        verify_cover(tiny_system, [0, 1])

    def test_raises_with_witness(self, tiny_system):
        with pytest.raises(ValueError, match="misses"):
            verify_cover(tiny_system, [0])

    def test_cover_size_dedupes(self):
        assert cover_size([1, 1, 2]) == 2


class TestHistogram:
    def test_counts(self, tiny_system):
        hist = coverage_histogram(tiny_system, [0, 2])
        assert hist[0] == 2  # element 0 in sets 0 and 2
        assert hist[3] == 0

    def test_duplicate_selection_counted_once(self, tiny_system):
        hist = coverage_histogram(tiny_system, [0, 0])
        assert hist[0] == 1


class TestGreedyCompletion:
    def test_completes_partial(self, tiny_system):
        result = greedy_completion(tiny_system, [0])
        assert tiny_system.is_cover(result)
        assert result[0] == 0  # original picks preserved in order

    def test_noop_on_full_cover(self, tiny_system):
        assert greedy_completion(tiny_system, [0, 1]) == [0, 1]

    def test_raises_on_infeasible(self, infeasible_system):
        with pytest.raises(ValueError):
            greedy_completion(infeasible_system, [])


class TestMerge:
    def test_concatenates(self):
        a = SetSystem(3, [[0]])
        b = SetSystem(3, [[1], [2]])
        merged = merge_systems(a, b)
        assert merged.m == 3
        assert merged[0] == frozenset({0})
        assert merged[2] == frozenset({2})

    def test_rejects_mismatched_universe(self):
        with pytest.raises(ValueError):
            merge_systems(SetSystem(2, []), SetSystem(3, []))
