"""Packaging for the PODS 2016 streaming set cover reproduction."""

from setuptools import find_packages, setup

setup(
    name="streaming-set-cover-repro",
    version="1.2.0",
    description=(
        "Reproduction of 'Towards Tight Bounds for the Streaming Set Cover "
        "Problem' (Har-Peled, Indyk, Mahabadi, Vakilian; PODS 2016)"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    license="MIT",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
    ],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
    ],
)
