"""E5 — Theorem 4.6 / Figure 4.1: geometric set cover in O~(n) space.

Two sweeps on random disc/rectangle instances:

* fixed n, growing m — ``algGeomSC``'s peak memory must stay flat
  (space independent of the number of shapes), while the abstract
  ``iterSetCover`` on the projected set system pays ~ m n^delta;
* growing n — the peak grows near-linearly in n.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import IterSetCoverConfig, IterSetCover
from repro.geometry import (
    GeometricSetCover,
    ShapeStream,
    random_disc_instance,
    random_rect_instance,
)
from repro.streaming import SetStream


def _geo_run(instance, seed=1):
    stream = ShapeStream(instance)
    result = GeometricSetCover(
        delta=0.25, seed=seed, sample_constant=0.3, use_polylog_factors=True
    ).solve(stream)
    assert stream.verify_solution(result.selection)
    return result


def test_space_independent_of_m(benchmark, write_report):
    n = 64
    rows = []
    for m in (40, 80, 160, 320):
        inst = random_rect_instance(n, m, seed=21)
        geo = _geo_run(inst)

        abstract = inst.to_set_system()
        stream = SetStream(abstract)
        abs_result = IterSetCover(
            config=IterSetCoverConfig(delta=0.25, sample_constant=0.3),
            seed=1,
        ).solve(stream)
        rows.append(
            {
                "n": n,
                "m": inst.m,
                "algGeomSC space": geo.peak_memory_words,
                "iterSetCover space": abs_result.peak_memory_words,
                "algGeomSC |sol|": geo.solution_size,
                "algGeomSC passes": geo.passes,
            }
        )
    write_report(
        "E5_theorem_4_6_m_sweep",
        render_table(
            rows,
            title="E5 / Theorem 4.6: fixed n=64, growing m (rectangles)",
        ),
    )
    # m grows 8x; geometric space must grow far slower than the abstract run.
    geo_growth = rows[-1]["algGeomSC space"] / rows[0]["algGeomSC space"]
    abs_growth = rows[-1]["iterSetCover space"] / rows[0]["iterSetCover space"]
    assert geo_growth < abs_growth
    assert geo_growth < 3.0

    inst = random_rect_instance(n, 80, seed=21)
    benchmark(lambda: _geo_run(inst))


def test_space_near_linear_in_n(benchmark, write_report):
    rows = []
    for n in (32, 64, 128):
        inst = random_disc_instance(n, 2 * n, seed=22)
        geo = _geo_run(inst)
        rows.append(
            {
                "n": n,
                "m": inst.m,
                "space(words)": geo.peak_memory_words,
                "space/n": geo.peak_memory_words / n,
                "passes": geo.passes,
                "|sol|": geo.solution_size,
            }
        )
    write_report(
        "E5b_theorem_4_6_n_sweep",
        render_table(
            rows, title="E5b / Theorem 4.6: growing n, m = 2n (discs)"
        ),
    )
    # Near-linear: words-per-point may grow only polylogarithmically.
    assert rows[-1]["space/n"] < rows[0]["space/n"] * 4

    inst = random_disc_instance(64, 128, seed=22)
    benchmark(lambda: _geo_run(inst))
