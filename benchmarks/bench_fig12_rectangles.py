"""E2 — Figure 1.2 + Lemma 4.2: quadratic projections, near-linear pool.

On the two-slanted-lines construction, the number of *distinct* shallow
rectangle projections grows as n^2/4 while the canonical pool produced by
x-tree anchored splitting stays O(n w^2 log n).  The regenerated table shows
both curves; the ratio must diverge with n.
"""

from __future__ import annotations

import math

from repro.analysis import render_table
from repro.geometry import (
    CanonicalRepresentation,
    count_distinct_projections,
    figure_1_2_instance,
)


def _canonical_pool_size(n: int) -> tuple[int, int]:
    instance = figure_1_2_instance(n)
    rep = CanonicalRepresentation(
        {i: p for i, p in enumerate(instance.points)}, mode="split"
    )
    for shape in instance.shapes:
        rep.add_shape(shape)
    return rep.pool_size, rep.pool_words


def test_figure_1_2_quadratic_vs_canonical(benchmark, write_report):
    rows = []
    for n in (16, 32, 64, 128):
        instance = figure_1_2_instance(n)
        distinct = count_distinct_projections(instance)
        pool, pool_words = _canonical_pool_size(n)
        rows.append(
            {
                "n": n,
                "m (=n^2/4)": instance.m,
                "distinct projections": distinct,
                "canonical pool": pool,
                "pool words": pool_words,
                "n*log2(n)": int(n * math.log2(n)),
                "pool/projections": pool / distinct,
            }
        )
    write_report(
        "E2_figure_1_2_rectangles",
        render_table(
            rows,
            title=(
                "E2 / Figure 1.2: distinct shallow rectangles (quadratic) vs "
                "canonical pool (near-linear), w = 2"
            ),
        ),
    )

    # Divergence check: the pool/projection ratio must drop as n grows.
    ratios = [row["pool/projections"] for row in rows]
    assert ratios[-1] < ratios[0] / 2
    # Projections are exactly quadratic; the pool stays within O(n log n).
    assert rows[-1]["distinct projections"] == (128 // 2) ** 2
    assert rows[-1]["canonical pool"] <= 4 * 128 * math.log2(128)

    benchmark(lambda: _canonical_pool_size(64))
