"""E9 — offline-solver ablation (the Theorem 2.8 remark).

``iterSetCover``'s approximation is O(rho / delta): with the exact solver
(rho = 1, exponential time) the cover is a constant factor from optimal;
greedy (rho = H_n) and LP rounding trade quality for polynomial time.  A
second ablation covers the cleanup pass and the sampling constant, the two
implementation knobs documented in DESIGN.md §3.2.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import IterSetCover, IterSetCoverConfig
from repro.offline import ExactSolver, GreedySolver, LPRoundingSolver
from repro.streaming import SetStream
from repro.workloads import planted_instance

N, M, OPT, SEED = 128, 96, 5, 31


def _run(solver, delta=0.5, sample_constant=0.6, cleanup=True):
    planted = planted_instance(n=N, m=M, opt=OPT, seed=SEED)
    stream = SetStream(planted.system)
    result = IterSetCover(
        config=IterSetCoverConfig(
            delta=delta,
            sample_constant=sample_constant,
            use_polylog_factors=False,
            include_rho=False,
            cleanup_pass=cleanup,
        ),
        solver=solver,
        seed=5,
    ).solve(stream)
    return stream, result


def test_solver_ablation(benchmark, write_report):
    rows = []
    for label, solver in (
        ("exact (rho=1)", ExactSolver()),
        ("greedy (rho=H_n)", GreedySolver()),
        ("lp-rounding (rho=O(log n))", LPRoundingSolver(seed=2)),
    ):
        stream, result = _run(solver)
        assert stream.verify_solution(result.selection), label
        rows.append(
            {
                "offline solver": label,
                "|sol|": result.solution_size,
                "approx": result.solution_size / OPT,
                "passes": result.passes,
                "space total": result.peak_memory_words,
            }
        )
    write_report(
        "E9_offline_solver_ablation",
        render_table(
            rows,
            title=(
                f"E9 / Theorem 2.8 remark: algOfflineSC ablation on planted "
                f"n={N} m={M} OPT={OPT}, delta=1/2"
            ),
        ),
    )
    exact_row = rows[0]
    assert exact_row["approx"] <= rows[1]["approx"] + 1e-9

    benchmark(lambda: _run(GreedySolver()))


def test_cleanup_and_constant_ablation(write_report, benchmark):
    rows = []
    for sample_constant in (0.05, 0.2, 0.6):
        for cleanup in (True, False):
            stream, result = _run(
                GreedySolver(), sample_constant=sample_constant, cleanup=cleanup
            )
            rows.append(
                {
                    "sample c": sample_constant,
                    "cleanup pass": cleanup,
                    "feasible": result.feasible,
                    "|sol|": result.solution_size,
                    "passes": result.passes,
                    "cleanup passes": result.cleanup_passes,
                    "space total": result.peak_memory_words,
                }
            )
    write_report(
        "E9b_cleanup_constant_ablation",
        render_table(
            rows,
            title="E9b / DESIGN.md 3.2: sampling constant + cleanup ablation",
        ),
    )
    # With the cleanup pass on, every configuration must be feasible.
    assert all(row["feasible"] for row in rows if row["cleanup pass"])
    # Larger constants -> larger samples -> more memory.
    big = [r for r in rows if r["sample c"] == 0.6 and r["cleanup pass"]][0]
    small = [r for r in rows if r["sample c"] == 0.05 and r["cleanup pass"]][0]
    assert big["space total"] >= small["space total"]

    benchmark(lambda: _run(GreedySolver(), sample_constant=0.2))
