"""E6 — Theorem 5.4 / Figures 5.1-5.4: the multipass lower-bound reduction.

For random ISC(n, p) instances, the reduced SetCover instance must have
optimum exactly (2p+1)n+1 when the ISC output is 1 and (2p+1)n+2 otherwise
(Corollary 5.8), with m = O(n).  The table also reports the Observation 5.9
communication cost of simulating a streaming algorithm on these instances.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.communication import (
    random_intersection_set_chasing,
    streaming_to_communication_bits,
)
from repro.lowerbounds import (
    certificate_cover,
    check_element_and_set_counts,
    check_mandatory_sets,
    reduce_isc_to_set_cover,
)
from repro.offline import exact_cover


def _verify(n: int, p: int, seed: int) -> dict:
    isc = random_intersection_set_chasing(n=n, p=p, max_out_degree=1, seed=seed)
    reduction = reduce_isc_to_set_cover(isc)
    check_element_and_set_counts(reduction)
    check_mandatory_sets(reduction)
    optimum = len(exact_cover(reduction.system, max_nodes=4_000_000))
    cert = certificate_cover(reduction)
    return {
        "n_chase": n,
        "p": p,
        "seed": seed,
        "|U|": reduction.system.n,
        "|F|": reduction.system.m,
        "ISC": reduction.isc.output(),
        "baseline": reduction.baseline,
        "optimum": optimum,
        "expected": reduction.expected_optimum(),
        "gap ok": optimum == reduction.expected_optimum(),
        "cert": len(cert) if cert else None,
    }


def test_reduction_gap_table(benchmark, write_report):
    rows = []
    for n, p in ((2, 2), (3, 2), (4, 2), (2, 3), (3, 3)):
        for seed in range(3):
            rows.append(_verify(n, p, seed=seed * 13 + n + p))
    write_report(
        "E6_theorem_5_4_gap",
        render_table(
            rows,
            title=(
                "E6 / Theorem 5.4: ISC -> SetCover reduction; optimum is "
                "(2p+1)n+1 iff ISC = 1 (Corollary 5.8)"
            ),
        ),
    )
    assert all(row["gap ok"] for row in rows)
    outcomes = {row["ISC"] for row in rows}
    assert outcomes == {True, False}  # both branches exercised

    benchmark(lambda: _verify(3, 2, seed=5))


def test_simulation_cost_table(write_report, benchmark):
    """Observation 5.9: what a streaming algorithm's resources imply in the
    communication model, against the [GO13] requirement n^{1+1/(2p)}."""
    rows = []
    for n, p in ((16, 2), (64, 2), (256, 2), (64, 3)):
        m_sets = (4 * p + 1) * n
        elements = (2 * p + 1) * 2 * n + 2 * p
        passes = max(1, p - 1)
        for space_words in (elements, m_sets * int(n**0.5)):
            bits = streaming_to_communication_bits(space_words, passes, 2 * p)
            rows.append(
                {
                    "n_chase": n,
                    "p": p,
                    "|U|": elements,
                    "|F|": m_sets,
                    "space(words)": space_words,
                    "sim bits (Obs 5.9)": bits,
                    "GO13 requirement": int(n ** (1 + 1 / (2 * p))),
                }
            )
    write_report(
        "E6b_observation_5_9",
        render_table(rows, title="E6b / Observation 5.9: simulation cost"),
    )
    benchmark(lambda: streaming_to_communication_bits(10_000, 3, 4))


def test_executed_simulation(write_report, benchmark):
    """Observation 5.9 *executed*: run real streaming algorithms over a
    reduction instance split among the 2p players, counting handoff bits."""
    from repro.baselines import MultiPassGreedy, StoreAllGreedy, ThresholdGreedy
    from repro.communication import simulate_players

    isc = random_intersection_set_chasing(n=4, p=2, max_out_degree=1, seed=9)
    reduction = reduce_isc_to_set_cover(isc)
    players = 2 * reduction.p

    rows = []
    for algo in (StoreAllGreedy(), MultiPassGreedy(), ThresholdGreedy()):
        report = simulate_players(reduction.system, players, algo)
        rows.append(
            {
                "algorithm": report["result"].algorithm,
                "rounds (passes)": report["rounds"],
                "handoffs": report["handoffs"],
                "space(words)": report["result"].peak_memory_words,
                "total bits": report["total_bits"],
                "|sol|": report["result"].solution_size,
            }
        )
    write_report(
        "E6c_executed_simulation",
        render_table(
            rows,
            title=(
                f"E6c / Observation 5.9 executed: streaming algorithms as a "
                f"{players}-player protocol on the reduced instance "
                f"(|U|={reduction.system.n}, |F|={reduction.system.m})"
            ),
        ),
    )
    # Low-memory algorithms communicate fewer bits per handoff.
    store_all, multi_pass = rows[0], rows[1]
    assert (
        multi_pass["total bits"] / multi_pass["handoffs"]
        < store_all["total bits"] / store_all["handoffs"]
    )

    algo = ThresholdGreedy()
    benchmark(lambda: simulate_players(reduction.system, players, algo))
