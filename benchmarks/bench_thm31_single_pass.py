"""E4 — Theorems 3.1/3.2/3.8: the single-pass Omega(mn) bound, mechanized.

Two experiments:

* **decodability** — ``algRecoverBit`` against Alice's message at different
  bit budgets: with the full mn bits the family is recovered exactly (the
  content of Theorem 3.2); recovery collapses as the budget shrinks.
* **2-vs-3 instances** — the Section 3 reduction target: deciding cover
  size 2 vs 3 equals (Many vs Many)-Set Disjointness; the exact solver
  confirms the planted optimum on every instance.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.communication import (
    ExactDisjointnessOracle,
    SketchDisjointnessOracle,
    alg_recover_bits,
    encode_family,
    random_family,
    recovery_fraction,
)
from repro.lowerbounds import two_vs_three_instance
from repro.offline import exact_cover

N, M = 32, 8
TRIALS = 3


def _recovery_at_budget(fraction: float, seed: int) -> float:
    family = random_family(N, M, seed=seed)
    message = encode_family(family, N)
    budget = int(fraction * N * M)
    if fraction >= 1.0:
        oracle = ExactDisjointnessOracle(message)
    else:
        oracle = SketchDisjointnessOracle(message, budget_bits=budget, seed=seed + 1)
    result = alg_recover_bits(oracle, N, M, seed=seed + 2)
    return recovery_fraction(result, family)


def test_recovery_vs_message_budget(benchmark, write_report):
    rows = []
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        fractions = [
            _recovery_at_budget(fraction, seed=10 * t) for t in range(TRIALS)
        ]
        rows.append(
            {
                "message bits / mn": fraction,
                "bits": int(fraction * N * M),
                "mean recovery": sum(fractions) / len(fractions),
                "min recovery": min(fractions),
                "max recovery": max(fractions),
            }
        )
    write_report(
        "E4_theorem_3_2_recovery",
        render_table(
            rows,
            title=(
                f"E4 / Theorem 3.2: algRecoverBit recovery rate vs message "
                f"budget (m={M}, n={N}, mn={M * N} bits, {TRIALS} trials)"
            ),
        ),
    )
    assert rows[-1]["mean recovery"] == 1.0  # full message -> full decoding
    assert rows[0]["mean recovery"] < 0.35  # starved oracle fails
    assert rows[0]["mean recovery"] <= rows[-1]["mean recovery"]

    benchmark(lambda: _recovery_at_budget(1.0, seed=77))


def test_two_vs_three_gap(benchmark, write_report):
    rows = []
    for plant in (True, False):
        for seed in range(4):
            inst = two_vs_three_instance(
                n=14, m_alice=5, m_bob=5, plant_two_cover=plant, seed=seed
            )
            optimum = len(exact_cover(inst.system))
            rows.append(
                {
                    "seed": seed,
                    "2-cover planted": plant,
                    "optimum": optimum,
                    "expected": inst.expected_optimum,
                    "agrees": optimum == inst.expected_optimum,
                }
            )
    write_report(
        "E4b_two_vs_three_gap",
        render_table(
            rows,
            title="E4b / Theorem 3.1: 2-vs-3 gap instances (optimum == planted)",
        ),
    )
    assert all(row["agrees"] for row in rows)

    inst = two_vs_three_instance(
        n=14, m_alice=5, m_bob=5, plant_two_cover=True, seed=0
    )
    benchmark(lambda: exact_cover(inst.system))
