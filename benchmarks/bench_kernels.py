"""K1 — packed bitmask kernel layer: backend speedups (DESIGN.md §4.3).

Runs the `repro.bench` harness at smoke scale so CI validates the
`BENCH_kernels.json` schema on every run, and renders the backend
speedup table into the reports directory.  The real numbers (paper/full
scale) come from ``python -m repro bench``.
"""

from __future__ import annotations

import json

from repro.bench import SCHEMA, render_summary, run_benchmarks

_EXPECTED_BENCHMARKS = {
    "pack_build",
    "union",
    "gains",
    "is_cover",
    "project",
    "without_dominated_sets",
    "greedy_cover",
    "iter_set_cover",
}


def test_kernel_bench_smoke(tmp_path, write_report):
    output = tmp_path / "BENCH_kernels.json"
    payload = run_benchmarks(scale="smoke", repeats=1, output=output)

    # Schema contract: what `python -m repro bench` promises in DESIGN.md §4.3.
    assert payload["schema"] == SCHEMA
    assert {"scale", "repeats", "environment", "instances", "results", "summary"} <= set(
        payload
    )
    for row in payload["results"]:
        assert set(row) == {"benchmark", "instance", "backend", "seconds", "repeats"}
        assert row["seconds"] >= 0
        assert row["backend"] in {"frozenset", "python", "numpy", "auto"}
    assert {row["benchmark"] for row in payload["results"]} == _EXPECTED_BENCHMARKS

    # Speedup fields are present wherever a frozenset baseline exists
    # (pack_build is cost-only: packing has no frozenset counterpart).
    for benchmark, instances in payload["summary"].items():
        if benchmark == "pack_build":
            continue
        for entry in instances.values():
            if "frozenset_seconds" in entry and "python_seconds" in entry:
                assert "python_speedup" in entry

    # The written file round-trips.
    on_disk = json.loads(output.read_text())
    assert on_disk["schema"] == SCHEMA
    assert on_disk["results"] == payload["results"]

    write_report("K1_kernel_backends", render_summary(payload))
