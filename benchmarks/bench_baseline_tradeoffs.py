"""E10 — the [ER14] and [CW16] rows: semi-streaming trade-off shapes.

* CW16 pass sweep: measured solution sizes against the
  (p+1) n^{1/(p+1)} guarantee — more passes, better covers, O~(n) space
  throughout.
* ER14 on the threshold-trap instance: the one-pass algorithm pays a
  sqrt(n)-type factor where multi-pass algorithms recover the optimum —
  the separation both papers' lower bounds formalize.
"""

from __future__ import annotations

import math

from repro.analysis import render_table
from repro.baselines import ChakrabartiWirth, EmekRosen, MultiPassGreedy
from repro.streaming import SetStream
from repro.workloads import threshold_trap_instance, uniform_random_instance


def test_cw16_pass_sweep(benchmark, write_report):
    n, m = 1024, 512
    system = uniform_random_instance(n, m, density=0.03, seed=41)
    rows = []
    for p in (1, 2, 3, 4, 5):
        stream = SetStream(system)
        result = ChakrabartiWirth(passes=p).solve(stream)
        assert stream.verify_solution(result.selection)
        rows.append(
            {
                "p (passes)": p,
                "|sol|": result.solution_size,
                "bound (p+1)n^{1/(p+1)}": round((p + 1) * n ** (1 / (p + 1)), 1),
                "space(words)": result.peak_memory_words,
                "space/n": result.peak_memory_words / n,
            }
        )
    write_report(
        "E10_cw16_pass_sweep",
        render_table(
            rows,
            title=f"E10 / [CW16]: pass sweep on uniform n={n} m={m}",
        ),
    )
    sizes = [row["|sol|"] for row in rows]
    assert sizes[-1] <= sizes[0]  # more passes never hurt
    for row in rows:
        assert row["space/n"] < 6  # Theta~(n) space throughout

    benchmark(lambda: ChakrabartiWirth(passes=3).solve(SetStream(system)))


def test_er14_trap_separation(benchmark, write_report):
    rows = []
    for n in (64, 256, 1024):
        system = threshold_trap_instance(n, seed=5)
        one_pass = EmekRosen().solve(SetStream(system))
        multi = MultiPassGreedy().solve(SetStream(system))
        rows.append(
            {
                "n": n,
                "ER14 |sol| (1 pass)": one_pass.solution_size,
                "multi-pass greedy |sol|": multi.solution_size,
                "optimum": 2,
                "sqrt(n)": round(math.sqrt(n), 1),
                "ER14 overpay factor": one_pass.solution_size / 2,
            }
        )
    write_report(
        "E10b_er14_trap",
        render_table(
            rows,
            title="E10b / [ER14]: one-pass vs multi-pass on the trap family",
        ),
    )
    # One pass overpays and the overpay grows with n; multi-pass stays ~OPT.
    overpays = [row["ER14 overpay factor"] for row in rows]
    assert overpays[-1] > overpays[0]
    assert all(row["multi-pass greedy |sol|"] <= 3 for row in rows)

    system = threshold_trap_instance(256, seed=5)
    benchmark(lambda: EmekRosen().solve(SetStream(system)))
