"""E8 — Lemma 2.5: relative (p, eps)-approximation sample sizes.

Sweeping the sample size shows the empirical failure rate of the
Definition 2.4 property dropping to ~0 at the Lemma 2.5 prescription —
the sampling engine ``iterSetCover``'s per-iteration guarantee rests on.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.sampling import (
    draw_sample,
    is_relative_approximation,
    relative_approximation_size,
)

N = 600
P, EPS, Q = 0.05, 0.5, 0.1
TRIALS = 30


def _random_ranges(rng, count=24):
    densities = np.geomspace(0.02, 0.6, count)
    return [
        set(np.flatnonzero(rng.random(N) < d).tolist()) for d in densities
    ]


def _failure_rate(sample_size: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    failures = 0
    for _ in range(TRIALS):
        ranges = _random_ranges(rng)
        sample = draw_sample(range(N), sample_size, seed=rng)
        if not is_relative_approximation(range(N), ranges, sample, P, EPS):
            failures += 1
    return failures / TRIALS


def test_failure_rate_vs_sample_size(benchmark, write_report):
    prescribed = relative_approximation_size(24, P, EPS, Q, c=1.0)
    rows = []
    for factor in (0.05, 0.15, 0.4, 1.0):
        size = min(N, max(1, int(prescribed * factor)))
        rate = _failure_rate(size, seed=31)
        rows.append(
            {
                "|Z| / Lemma 2.5 size": factor,
                "|Z|": size,
                "empirical failure rate": rate,
                "target q": Q if factor >= 1.0 else None,
            }
        )
    write_report(
        "E8_lemma_2_5_sampling",
        render_table(
            rows,
            title=(
                f"E8 / Lemma 2.5: failure rate of the (p={P}, eps={EPS}) "
                f"property vs sample size (|V|={N}, |H|=24, {TRIALS} trials)"
            ),
        ),
    )
    # At the prescribed size the failure rate is within the q target; far
    # below it the property visibly breaks.
    assert rows[-1]["empirical failure rate"] <= Q
    assert rows[0]["empirical failure rate"] > rows[-1]["empirical failure rate"]

    benchmark(lambda: _failure_rate(prescribed, seed=32))
