"""E2b — shallow-range counts for discs and fat triangles (Lemmas 4.3/4.4).

Complements E2 (rectangles): for random point sets,

* **discs** — the number of distinct w-shallow disc projections is
  O(n w^2) by Clarkson–Shor; the paper's dedupe canonicalization rests on
  it.  We measure the distinct-projection count against n w^2.
* **fat triangles** — our x-tree splitting substitution (DESIGN.md §3.3);
  we measure that the realized canonical pool stays near-linear in n on
  random workloads, the property the algorithm needs.
"""

from __future__ import annotations

import math

from repro.analysis import render_table
from repro.geometry import (
    CanonicalRepresentation,
    random_disc_instance,
    random_fat_triangle_instance,
)


def _disc_row(n: int, m: int, w: int, seed: int) -> dict:
    inst = random_disc_instance(n, m, radius_range=(0.02, 0.12), seed=seed)
    shallow = set()
    for shape in inst.shapes:
        content = inst.covered_points(shape)
        if 0 < len(content) <= w:
            shallow.add(content)
    return {
        "n": n,
        "m": m,
        "w": w,
        "distinct shallow discs": len(shallow),
        "n*w^2": n * w * w,
        "ratio": len(shallow) / (n * w * w),
    }


def test_disc_shallow_counts(benchmark, write_report):
    rows = [
        _disc_row(n, m=6 * n, w=4, seed=3) for n in (64, 128, 256)
    ]
    write_report(
        "E2b_disc_shallow_counts",
        render_table(
            rows,
            title="E2b / Lemma 4.4 (Clarkson-Shor): shallow disc projections vs n w^2",
        ),
    )
    # The Clarkson-Shor bound: counts stay below n w^2 with slack.
    assert all(row["distinct shallow discs"] <= row["n*w^2"] for row in rows)
    # And the normalized ratio does not grow with n.
    assert rows[-1]["ratio"] <= rows[0]["ratio"] * 1.5

    benchmark(lambda: _disc_row(128, 768, 4, seed=3))


def _triangle_pool(n: int, m: int, seed: int) -> dict:
    inst = random_fat_triangle_instance(n, m, scale_range=(0.03, 0.12), seed=seed)
    rep = CanonicalRepresentation(
        {i: p for i, p in enumerate(inst.points)}, mode="split"
    )
    for shape in inst.shapes:
        rep.add_shape(shape)
    return {
        "n": n,
        "m": m,
        "canonical pool": rep.pool_size,
        "pool / n": rep.pool_size / n,
        "n*log2(n)": int(n * math.log2(n)),
    }


def test_fat_triangle_pool_growth(benchmark, write_report):
    rows = [_triangle_pool(n, m=4 * n, seed=5) for n in (48, 96, 192)]
    write_report(
        "E2c_fat_triangle_pool",
        render_table(
            rows,
            title=(
                "E2c / Lemma 4.3 substitution: fat-triangle canonical pool "
                "growth (x-tree splitting, empirical)"
            ),
        ),
    )
    # Near-linear: pool-per-point stays within a constant-ish envelope
    # while n quadruples (the substitution's empirical check).
    assert rows[-1]["pool / n"] <= rows[0]["pool / n"] * 2.0

    benchmark(lambda: _triangle_pool(96, 384, seed=5))
