"""E1 — Figure 1.1: the summary table, measured.

Every algorithm row of the paper's comparison table runs on the same
planted-optimum workload; the regenerated table reports measured
approximation ratio, passes and peak memory so the qualitative ordering of
Figure 1.1 (who wins which resource) can be checked directly.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.baselines import (
    ChakrabartiWirth,
    DemaineEtAl,
    EmekRosen,
    MultiPassGreedy,
    SahaGetoor,
    StoreAllGreedy,
    ThresholdGreedy,
)
from repro.core import IterSetCover, IterSetCoverConfig
from repro.streaming import SetStream
from repro.workloads import planted_instance

N, M, OPT, SEED = 256, 320, 8, 42


def _instance():
    return planted_instance(n=N, m=M, opt=OPT, seed=SEED)


def _algorithms():
    scaled = dict(sample_constant=1.0, use_polylog_factors=False, include_rho=False)
    return [
        ("Greedy (store-all), paper row 1", StoreAllGreedy()),
        ("Greedy (multi-pass), paper row 2", MultiPassGreedy()),
        ("Greedy (threshold)", ThresholdGreedy()),
        ("[SG09]", SahaGetoor()),
        ("[ER14] 1-pass", EmekRosen()),
        ("[CW16] p=2", ChakrabartiWirth(passes=2)),
        ("[CW16] p=3", ChakrabartiWirth(passes=3)),
        (
            "[DIMV14] delta=1/2 (k given)",
            DemaineEtAl(delta=0.5, k=OPT, seed=7, sample_constant=0.2),
        ),
        (
            "iterSetCover delta=1/2 (Thm 2.8)",
            IterSetCover(config=IterSetCoverConfig(delta=0.5, **scaled), seed=7),
        ),
        (
            "iterSetCover delta=1/4 (Thm 2.8)",
            IterSetCover(config=IterSetCoverConfig(delta=0.25, **scaled), seed=7),
        ),
    ]


def test_figure_1_1_summary_table(benchmark, write_report):
    planted = _instance()
    rows = []
    for label, algo in _algorithms():
        stream = SetStream(planted.system)
        result = algo.solve(stream)
        assert stream.verify_solution(result.selection), label
        peak = result.peak_memory_words
        best_guess = None
        if result.guess_stats and result.best_k is not None:
            best_guess = result.guess_stats[result.best_k].peak_memory_words
        rows.append(
            {
                "algorithm": label,
                "|sol|": result.solution_size,
                "approx": result.solution_size / OPT,
                "passes": result.passes,
                "space(words)": peak,
                "space(best k)": best_guess,
            }
        )
    write_report(
        "E1_figure_1_1_summary",
        render_table(
            rows,
            title=(
                f"E1 / Figure 1.1 (measured): planted instance "
                f"n={N} m={M} OPT={OPT}; input size {planted.system.total_size()} words"
            ),
        ),
    )

    # The orderings Figure 1.1 promises.
    by_label = {row["algorithm"]: row for row in rows}
    ours = by_label["iterSetCover delta=1/2 (Thm 2.8)"]
    store_all = by_label["Greedy (store-all), paper row 1"]
    er14 = by_label["[ER14] 1-pass"]
    assert ours["approx"] <= er14["approx"]  # log-approx beats sqrt(n)-approx
    assert ours["space(best k)"] < store_all["space(words)"]

    # Timing: one full iterSetCover run.
    algo = IterSetCover(
        config=IterSetCoverConfig(
            delta=0.5, sample_constant=1.0, use_polylog_factors=False, include_rho=False
        ),
        seed=7,
    )
    benchmark(lambda: algo.solve(SetStream(planted.system)))


@pytest.mark.parametrize(
    "label,factory",
    [
        ("store_all", lambda: StoreAllGreedy()),
        ("threshold", lambda: ThresholdGreedy()),
        ("er14", lambda: EmekRosen()),
        ("cw16_p2", lambda: ChakrabartiWirth(passes=2)),
    ],
)
def test_baseline_timings(benchmark, label, factory):
    planted = _instance()
    benchmark(lambda: factory().solve(SetStream(planted.system)))
