"""E11 — eps-Partial Set Cover (the [ER14]/[CW16] generalization).

The paper's related work states both semi-streaming baselines for the
partial problem; this bench sweeps eps and shows (a) solution sizes
shrinking as coverage is relaxed, for both the one-pass threshold algorithm
and the partial ``iterSetCover``, and (b) the coverage requirement always
met.  The exact partial optimum anchors the approximation column at small
scale.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import IterSetCoverConfig
from repro.partial import (
    PartialIterSetCover,
    PartialThreshold,
    coverage_requirement,
    exact_partial_cover,
)
from repro.streaming import SetStream
from repro.workloads import planted_instance, zipf_instance

N, M, OPT = 120, 90, 6


def _run_partial(eps: float):
    planted = planted_instance(n=N, m=M, opt=OPT, seed=77)
    stream = SetStream(planted.system)
    result = PartialIterSetCover(
        eps=eps,
        config=IterSetCoverConfig(
            delta=0.5,
            sample_constant=1.0,
            use_polylog_factors=False,
            include_rho=False,
        ),
        seed=2,
    ).solve(stream)
    return planted.system, result


def test_partial_eps_sweep(benchmark, write_report):
    rows = []
    for eps in (0.0, 0.1, 0.25, 0.5):
        system, result = _run_partial(eps)
        required = coverage_requirement(N, eps)
        covered = len(system.covered_by(result.selection))
        optimum = len(exact_partial_cover(system, eps))

        one_pass = PartialThreshold(eps=eps).solve(SetStream(system))
        one_pass_covered = len(system.covered_by(one_pass.selection))

        rows.append(
            {
                "eps": eps,
                "required": required,
                "iter |sol|": result.solution_size,
                "iter covered": covered,
                "iter passes": result.passes,
                "1-pass |sol|": one_pass.solution_size,
                "1-pass covered": one_pass_covered,
                "exact optimum": optimum,
            }
        )
        assert covered >= required
        assert one_pass_covered >= required
    write_report(
        "E11_partial_cover",
        render_table(
            rows,
            title=(
                f"E11 / eps-Partial Set Cover on planted n={N} m={M} "
                f"OPT={OPT} ([ER14]/[CW16] generalization)"
            ),
        ),
    )
    # Relaxing coverage must never cost more sets, and must help eventually.
    exact_sizes = [row["exact optimum"] for row in rows]
    assert all(b <= a for a, b in zip(exact_sizes, exact_sizes[1:]))
    assert exact_sizes[-1] < exact_sizes[0]
    iter_sizes = [row["iter |sol|"] for row in rows]
    assert iter_sizes[-1] <= iter_sizes[0]

    benchmark(lambda: _run_partial(0.25))


def test_partial_on_skewed_corpus(write_report, benchmark):
    """Zipf corpora: covering the last few rare elements costs most of the
    cover — the motivation for the partial objective."""
    system = zipf_instance(300, 150, exponent=1.3, seed=8)
    rows = []
    for eps in (0.0, 0.05, 0.15, 0.3):
        stream = SetStream(system)
        result = PartialThreshold(eps=eps).solve(stream)
        rows.append(
            {
                "eps": eps,
                "required": coverage_requirement(system.n, eps),
                "|sol| (1 pass)": result.solution_size,
                "covered": result.extra["covered"],
            }
        )
    write_report(
        "E11b_partial_zipf",
        render_table(rows, title="E11b / partial coverage on a Zipf corpus"),
    )
    sizes = [row["|sol| (1 pass)"] for row in rows]
    assert sizes[-1] < sizes[0]

    benchmark(lambda: PartialThreshold(eps=0.1).solve(SetStream(system)))
