"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table/figure of the paper (see DESIGN.md §2 for
the experiment index).  Rendered tables are printed and also written to
``benchmarks/reports/<experiment>.txt`` so EXPERIMENTS.md can reference
stable artifacts; timings go through pytest-benchmark as usual.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def write_report():
    """Write a rendered table to the reports directory (and stdout)."""
    REPORTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        path = REPORTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")

    return _write
