"""E3 — Theorem 2.8 / Figure 1.3: the pass-space-quality trade-off.

Sweeping delta shows the three-way trade-off of ``iterSetCover``: passes
2/delta (+1 cleanup), per-guess space tracking ~ m n^delta, and solution
quality degrading gently as 1/delta grows.  The [DIMV14] column shows the
exponential pass blow-up the paper eliminates.
"""

from __future__ import annotations

import math

from repro.analysis import render_table
from repro.baselines import DemaineEtAl
from repro.core import IterSetCover, IterSetCoverConfig
from repro.streaming import SetStream
from repro.workloads import planted_instance

N, M, OPT, SEED = 512, 384, 8, 11
SCALED = dict(sample_constant=0.6, use_polylog_factors=False, include_rho=False)


def _run(delta: float):
    planted = planted_instance(n=N, m=M, opt=OPT, seed=SEED)
    stream = SetStream(planted.system)
    result = IterSetCover(
        config=IterSetCoverConfig(delta=delta, **SCALED), seed=3
    ).solve(stream)
    assert stream.verify_solution(result.selection)
    return planted, result


def test_tradeoff_table(benchmark, write_report):
    rows = []
    for delta in (1.0, 0.5, 1 / 3, 0.25):
        planted, result = _run(delta)
        best_guess = result.guess_stats[result.best_k].peak_memory_words
        dimv_stream = SetStream(planted.system)
        dimv = DemaineEtAl(
            delta=delta, k=OPT, seed=3, sample_constant=0.05
        ).solve(dimv_stream)
        rows.append(
            {
                "delta": round(delta, 3),
                "passes": result.passes,
                "2/delta (predicted)": math.ceil(2 / delta),
                "cleanup": result.cleanup_passes,
                "space best-k": best_guess,
                "space total": result.peak_memory_words,
                "m*n^delta": int(M * N**delta),
                "|sol|": result.solution_size,
                "approx": result.solution_size / OPT,
                "DIMV14 passes": dimv.passes,
            }
        )
    write_report(
        "E3_theorem_2_8_tradeoff",
        render_table(
            rows,
            title=(
                f"E3 / Theorem 2.8: delta sweep on planted n={N} m={M} "
                f"OPT={OPT} (sampling constants scaled, polylog stripped)"
            ),
        ),
    )

    # Shape assertions: passes track 2/delta; smaller delta, smaller samples.
    for row in rows:
        assert row["passes"] <= row["2/delta (predicted)"] + 1
    sizes = [row["space best-k"] for row in rows]
    assert sizes[-1] < sizes[0]  # delta=1/4 uses less memory than delta=1
    # DIMV14 needs at least as many passes everywhere, strictly more when
    # its recursion kicks in at small delta.
    assert rows[-1]["DIMV14 passes"] > rows[-1]["passes"]

    benchmark(lambda: _run(0.5))


def test_sample_size_formula_shape(write_report, benchmark):
    """|S| = c rho k n^delta log m log n — the Lemma 2.6 budget, evaluated."""
    config_full = IterSetCoverConfig(delta=0.5)
    config_bare = IterSetCoverConfig(delta=0.5, use_polylog_factors=False)
    rows = []
    for n in (256, 1024, 4096):
        rows.append(
            {
                "n": n,
                "|S| full formula (k=8, rho=1)": config_full.sample_size(n, 2 * n, 8, 1.0),
                "|S| no polylog": config_bare.sample_size(n, 2 * n, 8, 1.0),
                "k*n^delta": int(8 * n**0.5),
            }
        )
    write_report(
        "E3b_sample_size_formula",
        render_table(rows, title="E3b / Lemma 2.6 sample-size budget"),
    )
    assert rows[-1]["|S| no polylog"] == rows[-1]["k*n^delta"]
    benchmark(lambda: config_full.sample_size(4096, 8192, 8, 1.0))
