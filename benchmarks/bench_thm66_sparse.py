"""E7 — Theorem 6.6: sparse lower-bound instances.

Sweeping the overlay width t certifies (a) the reduced instances are
O~(t)-sparse (S-type sets hold at most rt + 3 elements), (b) the optimum
gap still tracks the ISC output exactly, and (c) the OR -> ISC soundness
direction holds, with the false-positive rate of the overlay reported
(it shrinks as n grows relative to t^2 p r^{p-1}, Lemma 6.5's condition).
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.lowerbounds import build_sparse_instance, sparse_certificates
from repro.offline import exact_cover


def test_sparsity_and_gap(benchmark, write_report):
    rows = []
    for t in (1, 2, 3):
        sparse = build_sparse_instance(n=6, p=2, t=t, seed=t)
        cert = sparse_certificates(sparse)
        optimum = len(exact_cover(sparse.reduction.system, max_nodes=4_000_000))
        rows.append(
            {
                "t": t,
                "r": cert["r"],
                "|U|": cert["elements"],
                "|F|": cert["sets"],
                "sparsity s": cert["sparsity"],
                "bound rt+3": cert["sparsity_bound"],
                "OR_t": cert["or_equal"],
                "ISC": cert["isc_output"],
                "optimum": optimum,
                "expected": cert["expected_optimum"],
                "gap ok": optimum == cert["expected_optimum"],
            }
        )
    write_report(
        "E7_theorem_6_6_sparse",
        render_table(
            rows,
            title="E7 / Theorem 6.6: OR_t(EqualLimitedPC) -> sparse SetCover",
        ),
    )
    assert all(row["gap ok"] for row in rows)
    assert all(row["sparsity s"] <= row["bound rt+3"] for row in rows)

    benchmark(lambda: build_sparse_instance(n=6, p=2, t=2, seed=9))


def test_overlay_fidelity_rate(write_report, benchmark):
    """Empirical OR == ISC agreement vs n (stray-path interference decays)."""
    rows = []
    for n in (6, 12, 24, 48):
        agree = sound = trials = 0
        for seed in range(20):
            sparse = build_sparse_instance(n=n, p=2, t=2, seed=seed * 7)
            trials += 1
            or_out = sparse.or_of_equalities
            isc_out = sparse.reduction.isc.output()
            agree += or_out == isc_out
            sound += (not or_out) or isc_out
        rows.append(
            {
                "n_chase": n,
                "trials": trials,
                "OR==ISC rate": agree / trials,
                "soundness (OR=>ISC)": sound / trials,
            }
        )
    write_report(
        "E7b_overlay_fidelity",
        render_table(
            rows,
            title=(
                "E7b / Lemma 6.5: overlay fidelity vs n "
                "(t=2, p=2; condition t^2 p r^{p-1} < n/10)"
            ),
        ),
    )
    assert all(row["soundness (OR=>ISC)"] == 1.0 for row in rows)
    assert rows[-1]["OR==ISC rate"] >= rows[0]["OR==ISC rate"]

    benchmark(lambda: build_sparse_instance(n=24, p=2, t=2, seed=3))
